"""Command-line interface.

Subcommands::

    python -m repro run PROGRAM.mc [--inputs data.json] [--machine M]
        Compile a MiniC file through the full pipeline and simulate it.

    python -m repro interpret PROGRAM.mc [--inputs data.json]
        Run a MiniC file under the reference interpreter.

    python -m repro suite [--category int|fp] [--suite NAME]
        List the registered benchmarks.

    python -m repro suite promote [--corpus PATH] [--fuzz-seed N]
        Differential-verify corpus reproducers or fuzzer programs and
        promote them into the suite as first-class benchmarks with an
        explicit train/novel split (--split).

    python -m repro simulate BENCHMARK [--dataset train|novel] [...]
        Compile + simulate one suite benchmark, print machine counters.

    python -m repro profile BENCHMARK [--case C] [--trace FILE]
        Compile + simulate one benchmark with observability on and
        print per-pass timing and simulator counter tables.

    python -m repro verify PROGRAM.mc [--inputs data.json] [--machine M]
        Compile a MiniC file with the IR verifier on and check the
        optimized binary against the reference interpreter
        (differential oracle); non-zero exit on any divergence.

    python -m repro fuzz [--count N] [--seed S] [--machine M]
        Generate N random well-defined MiniC programs and run each
        through the differential oracle, shrinking any failure.

    python -m repro evolve CASE BENCHMARK [--pop N] [--gens N] [...]
        Run Meta Optimization: evolve a priority function for one
        benchmark of a case study and report speedups.

    python -m repro generalize CASE --train B1,B2,... [--test ...]
        Evolve one general-purpose priority function over a training
        suite with dynamic subset selection, optionally
        cross-validating on an unseen test suite.

    python -m repro cache stats|export [--fitness-cache DIR]
        Inspect the persistent fitness cache: corpus summary or a
        record-by-record export (the surrogate trainer's data source).

    python -m repro artifacts list|show|verify|lineage|channels [ID]
        Inspect the heuristic artifact store (content-addressed
        evolved priority functions written by ``--publish``), its
        ancestry chains, and the per-(case, machine) deployment
        channel pointers.

    python -m repro serve [--port P] [--workers N] [--autopilot DIR]
        Run the compile/evaluate HTTP daemon: bounded job queue, warm
        workers, 429 backpressure, SIGTERM drain (docs/SERVING.md);
        --autopilot adds online continuous re-optimization
        (docs/AUTOPILOT.md).

    python -m repro submit BENCHMARK [--artifact ID] [--url URL]
        Send one evaluation to a running daemon and wait for the
        result (byte-identical to ``repro simulate --json``).

``evolve`` and ``generalize`` are campaign commands: ``--run-dir``
persists config/telemetry/checkpoints under a run directory,
``--resume`` continues a killed run bit-identically, ``--publish``
writes the winning expression to the artifact store at campaign end,
and ``--json`` prints the machine-readable ``result.json`` payload
instead of the human summary (also available on ``simulate``).  See
``docs/EXPERIMENTS_API.md``.

``--json`` is uniform: every subcommand that accepts it prints exactly
one JSON object on stdout, on success and on failure alike (failures
are ``{"schema": 1, "ok": false, "error": ...}`` with a non-zero
exit).

``simulate``, ``evolve``, and ``generalize`` also take ``--trace FILE``
(write a Chrome ``trace_event`` JSON of the run, loadable in
``chrome://tracing`` / Perfetto) and ``--metrics`` (collect
:mod:`repro.obs` metrics: on campaigns, per-generation ``metrics``
events land in ``events.jsonl``; on ``simulate``, a counter summary is
printed).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    REGALLOC_MACHINE,
    MachineDescription,
)

MACHINES: dict[str, MachineDescription] = {
    "epic": DEFAULT_EPIC,
    "itanium": ITANIUM_MACHINE,
    "regalloc": REGALLOC_MACHINE,
}

#: Case studies whose candidates are priority-function expression
#: trees — everything simulate/profile/submit can deploy.
TREE_CASES = ("hyperblock", "regalloc", "prefetch", "scheduling",
              "inline", "unroll")

#: Everything ``evolve``/``generalize`` accept: the tree cases plus the
#: FOGA-style flag-genome campaign (serial evaluation only, no
#: artifacts — see docs/CASES.md).
CAMPAIGN_CASES = TREE_CASES + ("flags",)


def _load_inputs(path: str | None) -> dict:
    if path is None:
        return {}
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise SystemExit("--inputs must be a JSON object "
                         "{global: [values...]}")
    return data


def _print_sim_result(result) -> None:
    print(f"outputs          : {result.outputs}")
    if result.return_value is not None:
        print(f"return value     : {result.return_value}")
    print(f"cycles           : {result.cycles}")
    print(f"dynamic ops      : {result.dynamic_ops} "
          f"(+{result.squashed_ops} squashed)")
    print(f"memory stalls    : {result.memory_stall_cycles}")
    print(f"branch stalls    : {result.branch_stall_cycles}")
    print(f"L1 hit rate      : {result.l1_hit_rate:.2%}")
    print(f"branch accuracy  : {result.branch_accuracy:.2%}")
    print(f"prefetches       : {result.prefetch_count}")


#: Pipeline stage display order for the profile tables.
_STAGE_ORDER = ("inline", "cleanup", "unroll", "profile",
                "hyperblock", "prefetch", "regalloc", "schedule")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace_event JSON of this run to FILE "
             "(load in chrome://tracing or https://ui.perfetto.dev)")
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect repro.obs metrics: campaigns emit per-generation "
             "'metrics' events into events.jsonl; simulate prints a "
             "counter summary")


def _add_fleet_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fleet", metavar="SPEC",
        help="shard fitness evaluation across serve workers: 'local:N' "
             "spawns N local workers, 'host:port,host:port' uses "
             "running daemons (docs/FLEET.md); mutually exclusive "
             "with --processes > 1")


def _print_pass_table(snapshot: dict) -> None:
    """Per-pass timing + IR delta table from a metrics snapshot."""
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    stages = [name[len("pipeline.pass_seconds."):]
              for name in histograms
              if name.startswith("pipeline.pass_seconds.")]
    ordered = [s for s in _STAGE_ORDER if s in stages]
    ordered += sorted(s for s in stages if s not in _STAGE_ORDER)
    print(f"{'pass':<12s}{'runs':>6s}{'total_s':>11s}{'mean_s':>11s}"
          f"{'ir_delta':>10s}")
    for stage in ordered:
        data = histograms[f"pipeline.pass_seconds.{stage}"]
        runs = counters.get(f"pipeline.pass_runs.{stage}", data["count"])
        mean = data["sum"] / data["count"] if data["count"] else 0.0
        delta = counters.get(f"pipeline.ir_delta.{stage}", 0)
        print(f"{stage:<12s}{runs:>6d}{data['sum']:>11.4f}{mean:>11.5f}"
              f"{delta:>+10d}")


def _print_counter_table(snapshot: dict, prefix: str, title: str) -> None:
    rows = sorted((name[len(prefix):], value)
                  for name, value in snapshot["counters"].items()
                  if name.startswith(prefix))
    if not rows:
        return
    print(f"{title:<24s}{'value':>12s}")
    for name, value in rows:
        print(f"{name:<24s}{value:>12}")


def _histogram_p50(data: dict) -> float:
    """Nearest-rank median estimate from histogram buckets: the upper
    edge of the bucket holding the median observation (overflow bucket
    reports the largest edge)."""
    total = data["count"]
    if not total:
        return 0.0
    target = (total + 1) // 2
    cumulative = 0
    for edge, count in zip(data["buckets"], data["counts"]):
        cumulative += count
        if cumulative >= target:
            return edge
    return data["buckets"][-1]


def _print_snapshot_table(snapshot: dict) -> None:
    """Compilation-forking health (docs/FORKING.md): hit ratio,
    restore latency, bytes resident.  Silent when the layer never ran
    (``--no-snapshot`` or no backend compiles)."""
    counters = snapshot["counters"]
    hits = counters.get("pipeline.snapshot.hits", 0)
    misses = counters.get("pipeline.snapshot.misses", 0)
    if hits + misses == 0:
        return
    restores = snapshot["histograms"].get(
        "pipeline.snapshot.restore_seconds",
        {"buckets": [0.0], "counts": [0, 0], "sum": 0.0, "count": 0})
    resident = snapshot.get("gauges", {}).get(
        "pipeline.snapshot.resident_bytes", 0)
    rows = [
        ("hits", hits),
        ("misses", misses),
        ("hit_ratio", f"{hits / (hits + misses):.2f}"),
        ("builds", counters.get("pipeline.snapshot.builds", 0)),
        ("disk_hits", counters.get("pipeline.snapshot.disk_hits", 0)),
        ("restores", restores["count"]),
        ("restore_p50_ms", f"{_histogram_p50(restores) * 1000:.2f}"),
        ("resident_bytes", resident),
        ("strategy_pickle",
         counters.get("pipeline.snapshot.strategy_pickle", 0)),
        ("strategy_clone",
         counters.get("pipeline.snapshot.strategy_clone", 0)),
    ]
    print(f"{'snapshot':<24s}{'value':>12s}")
    for name, value in rows:
        print(f"{name:<24s}{value:>12}")


def _print_fleet_table(snapshot: dict) -> None:
    """Fleet dispatch health (docs/FLEET.md): shard counters,
    per-worker latency, straggler spread.  Silent when no fleet ran
    inside this process."""
    counters = snapshot["counters"]
    if not any(name.startswith("fleet.") for name in counters):
        return
    _print_counter_table(snapshot, "fleet.", "fleet counter")
    prefix = "fleet.shard_seconds."
    workers = sorted(name[len(prefix):]
                     for name in snapshot["histograms"]
                     if name.startswith(prefix))
    if workers:
        print()
        print(f"{'fleet worker':<24s}{'shards':>8s}{'total_s':>11s}"
              f"{'p50_s':>9s}")
        for worker in workers:
            data = snapshot["histograms"][prefix + worker]
            print(f"{worker:<24s}{data['count']:>8d}{data['sum']:>11.3f}"
                  f"{_histogram_p50(data):>9.3f}")
    straggler = snapshot["gauges"].get("fleet.straggler_seconds")
    if straggler is not None:
        print(f"{'straggler spread (s)':<24s}{straggler:>12.3f}")


def _print_surrogate_table(snapshot: dict) -> None:
    """Learned-surrogate health (docs/SURROGATE.md): sims saved, rank
    correlation, refit/promotion counts.  Silent when no surrogate ran
    inside this process."""
    counters = snapshot["counters"]
    if not any(name.startswith("surrogate.") for name in counters):
        return
    _print_counter_table(snapshot, "surrogate.", "surrogate counter")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if name.startswith("surrogate."):
            print(f"{name[len('surrogate.'):]:<24s}{value:>12.4f}")
    corr = snapshot["histograms"].get("surrogate.rank_corr")
    if corr is not None and corr["count"]:
        print(f"{'rank_corr_p50':<24s}"
              f"{_histogram_p50(corr):>12.2f}")


def cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.metaopt.harness import EvaluationHarness, case_study

    registry = obs.enable_metrics()
    tracer = obs.enable_tracing() if args.trace else None
    try:
        harness = EvaluationHarness(case_study(args.case))
        result = harness.baseline_result(args.benchmark, args.dataset)
        if getattr(args, "fleet", None):
            # Drive one baseline evaluation through the fleet so the
            # dispatch/latency tables below have something to show.
            from repro.fleet import FleetEvaluator
            from repro.metaopt.settings import EvalSettings

            with FleetEvaluator(args.case, args.fleet,
                                EvalSettings()) as fleet:
                fleet.evaluate_batch(
                    [(harness.case.baseline_tree(), args.benchmark)],
                    dataset=args.dataset)
        if getattr(args, "surrogate", False):
            # Train a surrogate from the persistent cache and score
            # the baseline with it, so the surrogate table below has
            # something to show.
            from repro.surrogate import (
                FeatureExtractor,
                train_from_cache,
            )

            cache = _resolve_fitness_cache(args)
            if cache is None:
                raise SystemExit(
                    "repro profile --surrogate needs a fitness cache "
                    "(--fitness-cache DIR or $REPRO_FITNESS_CACHE)")
            model, report = train_from_cache(cache, args.case)
            if model is not None:
                extractor = FeatureExtractor(harness.case.pset)
                prediction = model.predict(
                    extractor.vector(harness.case.baseline_tree()),
                    args.benchmark)
                obs.set_gauge("surrogate.baseline_prediction", prediction)
    finally:
        obs.disable_metrics()
        if tracer is not None:
            obs.disable_tracing()
    snapshot = registry.snapshot()
    if tracer is not None:
        tracer.write(args.trace)

    if args.json:
        print(json.dumps({
            "schema": 1,
            "benchmark": args.benchmark,
            "case": args.case,
            "dataset": args.dataset,
            "machine": harness.case.machine.name,
            "cycles": result.cycles,
            "metrics": snapshot,
        }, indent=2, sort_keys=True))
        return 0
    print(f"profile of {args.benchmark} ({args.case} baseline, "
          f"{args.dataset} data, {harness.case.machine.name})")
    print()
    _print_pass_table(snapshot)
    print()
    _print_counter_table(snapshot, "sim.", "simulator counter")
    print()
    _print_snapshot_table(snapshot)
    _print_fleet_table(snapshot)
    _print_surrogate_table(snapshot)
    print()
    _print_sim_result(result)
    if tracer is not None:
        print(f"trace written    : {args.trace}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler import compile_program

    source = Path(args.program).read_text()
    inputs = _load_inputs(args.inputs)
    machine = MACHINES[args.machine]
    from repro.passes.pipeline import CompilerOptions

    options = CompilerOptions(machine=machine, prefetch=args.prefetch)
    program = compile_program(source, profile_inputs=inputs,
                              options=options, name=args.program)
    result = program.run(inputs, noise_stddev=args.noise)
    _print_sim_result(result)
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    from repro.compiler import interpret

    source = Path(args.program).read_text()
    result = interpret(source, _load_inputs(args.inputs))
    print(f"outputs      : {result.outputs}")
    if result.return_value is not None:
        print(f"return value : {result.return_value}")
    print(f"steps        : {result.steps}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.passes.pipeline import CompilerOptions
    from repro.verify.differential import run_differential

    source = Path(args.program).read_text()
    inputs = _load_inputs(args.inputs)
    options = CompilerOptions(
        machine=MACHINES[args.machine],
        prefetch=args.prefetch,
        unroll_factor=args.unroll,
        verify_ir=not args.no_verify_ir,
    )
    result = run_differential(source, inputs, options,
                              max_steps=args.max_steps, name=args.program)
    if args.json:
        payload = {"schema": 1, "program": args.program}
        payload.update(result.to_json_dict())
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.equivalent else 1
    if result.equivalent:
        detail = ""
        if result.interp_fault is not None:
            detail = " (both engines faulted identically)"
        print(f"{args.program}: interpreter and simulator agree{detail}")
        return 0
    print(f"{args.program}: DIVERGENCE "
          f"({len(result.divergences)} channel(s))", file=sys.stderr)
    for divergence in result.divergences:
        print(f"  {divergence}", file=sys.stderr)
    print(f"  options: {result.options_summary}", file=sys.stderr)
    return 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.passes.pipeline import CompilerOptions
    from repro.verify.fuzz import fuzz

    options = CompilerOptions(
        machine=MACHINES[args.machine],
        prefetch=args.prefetch,
        verify_ir=not args.no_verify_ir,
    )

    def progress(index, seed, equivalent):
        if not args.json and not equivalent:
            print(f"  case {index} (seed {seed}): DIVERGENCE",
                  file=sys.stderr)

    report = fuzz(args.count, seed=args.seed, options=options,
                  max_steps=args.max_steps, shrink=not args.no_shrink,
                  on_case=progress)

    if args.save_dir and report.failures:
        save_root = Path(args.save_dir)
        save_root.mkdir(parents=True, exist_ok=True)
        for failure in report.failures:
            stem = save_root / f"fuzz-{failure.seed}"
            stem.with_suffix(".mc").write_text(failure.minimized_source)
            stem.with_suffix(".inputs.json").write_text(
                json.dumps(failure.inputs))
            stem.with_suffix(".report.json").write_text(
                json.dumps(failure.result.to_json_dict(), indent=2,
                           sort_keys=True))

    if args.json:
        payload = {"schema": 1}
        payload.update(report.to_json_dict())
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"fuzz: {report.count} programs (seed {report.seed}, "
          f"machine {args.machine})")
    print(f"  passed        : {report.passed}")
    print(f"  agreed faults : {report.agreed_faults}")
    print(f"  divergences   : {len(report.failures)}")
    if report.generator_errors:
        print(f"  generator errors: {len(report.generator_errors)}")
        for seed, error in report.generator_errors:
            print(f"    seed {seed}: {error}", file=sys.stderr)
    for failure in report.failures:
        print(f"  seed {failure.seed}: {failure.result.first} "
              f"(minimized to {len(failure.minimized_source.splitlines())} "
              f"lines, -{failure.removed_stmts} stmts)", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_suite_promote(args: argparse.Namespace) -> int:
    from repro.suite.promoted import (
        PromotionError,
        add_promoted,
        promote_corpus_entry,
        promote_fuzz_program,
        promoted_path,
    )

    if not args.corpus and not args.fuzz_seed:
        raise SystemExit(
            "repro suite promote: nothing to promote — pass "
            "--corpus PATH (a .mc file or a corpus directory) and/or "
            "--fuzz-seed N")
    target = Path(args.registry_file) if args.registry_file else None
    programs = []
    try:
        for corpus in args.corpus or ():
            path = Path(corpus)
            if path.is_dir():
                entries = sorted(path.glob("*.mc"))
                if not entries:
                    raise SystemExit(
                        f"repro suite promote: no .mc files under {path}")
            else:
                entries = [path]
            for entry in entries:
                programs.append(
                    promote_corpus_entry(entry, split=args.split))
        for seed in args.fuzz_seed or ():
            programs.append(promote_fuzz_program(seed, split=args.split))
    except PromotionError as error:
        raise SystemExit(f"repro suite promote: {error}")
    merged = add_promoted(programs, target)
    registry_file = target if target is not None else promoted_path()
    if args.json:
        print(json.dumps({
            "schema": 1,
            "registry": str(registry_file),
            "promoted": [program.name for program in programs],
            "total": len(merged),
        }, indent=2, sort_keys=True))
        return 0
    for program in programs:
        print(f"promoted {program.name:<24s} "
              f"({program.origin}, {program.split} split)")
    print(f"{len(merged)} promoted benchmark(s) in {registry_file}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.suite import all_benchmarks

    if getattr(args, "action", "list") == "promote":
        return _cmd_suite_promote(args)
    rows = sorted(all_benchmarks().items())
    if args.category:
        rows = [(n, b) for n, b in rows if b.category == args.category]
    if args.suite:
        rows = [(n, b) for n, b in rows if b.suite == args.suite]
    print(f"{'name':<16s}{'suite':<12s}{'cat':<5s}description")
    for name, bench in rows:
        print(f"{name:<16s}{bench.suite:<12s}{bench.category:<5s}"
              f"{bench.description}")
    print(f"{len(rows)} benchmarks")
    return 0


def _resolve_fitness_cache(args: argparse.Namespace):
    """``--fitness-cache DIR`` / ``--no-fitness-cache`` / the
    ``REPRO_FITNESS_CACHE`` environment variable, in that order."""
    from repro.metaopt.fitness_cache import cache_from_env

    return cache_from_env(
        explicit_dir=getattr(args, "fitness_cache", None),
        disabled=getattr(args, "no_fitness_cache", False),
    )


def _resolve_publish_dir(args: argparse.Namespace) -> str | None:
    """``--publish [DIR]``: explicit DIR, or the default artifact
    store (``$REPRO_ARTIFACT_STORE`` / ``./artifacts``) when the flag
    is given bare.  None when not publishing."""
    publish = getattr(args, "publish", None)
    if publish is None:
        return None
    if publish != "":
        return publish
    from repro.serve.registry import registry_from_env

    return str(registry_from_env().root)


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--run-dir", metavar="DIR",
        help="execute inside run directory DIR: persists config.json, "
             "events.jsonl, per-generation checkpoints, and result.json")
    parser.add_argument(
        "--resume", action="store_true",
        help="continue a killed run from DIR's last checkpoint "
             "(bit-identical to an uninterrupted run); the campaign "
             "config is read from DIR/config.json, so CASE and other "
             "campaign flags are ignored")
    parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable result.json payload instead "
             "of the human summary")
    parser.add_argument(
        "--stop-after-generation", type=int, metavar="N",
        help="checkpoint generation N (0-based) and stop, as if the "
             "run had been killed — for testing resume workflows")
    parser.add_argument(
        "--publish", nargs="?", const="", metavar="DIR",
        help="at campaign end, package the best evolved expression as "
             "a content-addressed heuristic artifact under DIR "
             "(default: $REPRO_ARTIFACT_STORE or ./artifacts); deploy "
             "it with 'repro simulate --artifact' or 'repro serve'")


def _add_verify_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify", action="store_true",
        help="differential guard: check every fresh simulation against "
             "the reference interpreter; miscompiling candidates get "
             "worst-case fitness and are never persisted to the cache")


def _add_fitness_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fitness-cache", metavar="DIR",
        help="persist simulation results under DIR (shared across "
             "runs and figure scripts; defaults to $REPRO_FITNESS_CACHE)")
    parser.add_argument(
        "--no-fitness-cache", action="store_true",
        help="disable the persistent fitness cache even when "
             "$REPRO_FITNESS_CACHE is set")


def _add_surrogate_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--surrogate", action="store_true",
        help="learned surrogate fitness (docs/SURROGATE.md): train a "
             "model from the persistent fitness cache, rank each "
             "generation, and fully simulate only the top-K plus an "
             "exploration sample; the champion is always "
             "simulator-verified.  Off by default — the seed path is "
             "untouched without it")
    parser.add_argument(
        "--surrogate-top-k", type=int, default=8, metavar="K",
        help="candidates per generation that always get exact "
             "simulation under --surrogate (default 8)")


def _add_snapshot_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="disable compilation forking (hook-point pipeline "
             "snapshots with suffix-only replay, docs/FORKING.md) and "
             "recompile the full backend for every candidate; results "
             "are bit-identical either way")


def _load_artifact(args: argparse.Namespace):
    """Resolve ``--artifact``/``--artifact-store`` into a loaded
    artifact (or None) and the case name to simulate under."""
    from repro.serve.artifact import ArtifactError
    from repro.serve.registry import registry_from_env

    case_name = args.case
    if not getattr(args, "artifact", None):
        return None, case_name
    registry = registry_from_env(getattr(args, "artifact_store", None))
    artifact = registry.load(args.artifact)
    if artifact.case != case_name and case_name != "hyperblock":
        raise ArtifactError(
            f"artifact {artifact.short_id} targets {artifact.case}, "
            f"--case says {case_name}")
    return artifact, artifact.case


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.metaopt.harness import EvaluationHarness, case_study
    from repro.metaopt.settings import EvalSettings
    from repro.serve.jobs import simulation_payload

    artifact, case_name = _load_artifact(args)
    tracer = obs.enable_tracing() if args.trace else None
    registry = obs.enable_metrics() if args.metrics else None
    try:
        harness = EvaluationHarness(
            case_study(case_name),
            EvalSettings(use_snapshots=not args.no_snapshot),
            fitness_cache=_resolve_fitness_cache(args))
        if artifact is not None:
            result = harness.simulate(artifact.tree(), args.benchmark,
                                      args.dataset)
        else:
            result = harness.baseline_result(args.benchmark, args.dataset)
    finally:
        if registry is not None:
            obs.disable_metrics()
        if tracer is not None:
            obs.disable_tracing()
            tracer.write(args.trace)
    if args.json:
        payload = simulation_payload(
            case_name, harness.case.machine.name, args.benchmark,
            args.dataset, result,
            artifact_id=(artifact.artifact_id
                         if artifact is not None else None))
        if registry is not None:
            payload["metrics"] = registry.snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"benchmark        : {args.benchmark} ({args.dataset} data, "
          f"{harness.case.machine.name})")
    if artifact is not None:
        print(f"artifact         : {artifact.short_id} ({artifact.case})")
    _print_sim_result(result)
    if registry is not None:
        print()
        _print_counter_table(registry.snapshot(), "sim.",
                             "simulator counter")
    if tracer is not None:
        print(f"trace written    : {args.trace}")
    return 0


def _fitness_cache_dir(args: argparse.Namespace) -> str | None:
    cache = _resolve_fitness_cache(args)
    return str(cache.root) if cache is not None else None


def _comma_list(text: str | None) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(name.strip() for name in text.split(",") if name.strip())


def _run_campaign(args: argparse.Namespace, config) -> int:
    """Shared driver of ``evolve`` and ``generalize``: build the
    runner, execute (or resume), render the outcome."""
    from repro import obs
    from repro.experiments import ExperimentRunner, PrettySink

    sinks = () if args.json else (PrettySink(),)
    stop_after = getattr(args, "stop_after_generation", None)
    collect_metrics = bool(getattr(args, "metrics", False))
    use_snapshots = not getattr(args, "no_snapshot", False)
    trace_path = getattr(args, "trace", None)
    fleet = getattr(args, "fleet", None)
    publish_dir = _resolve_publish_dir(args)
    surrogate = bool(getattr(args, "surrogate", False))
    surrogate_top_k = getattr(args, "surrogate_top_k", 8)
    if args.resume:
        if args.run_dir is None:
            raise SystemExit("--resume requires --run-dir (the run "
                             "directory holds the campaign's config)")
        runner = ExperimentRunner.from_run_dir(
            args.run_dir, sinks=sinks, stop_after_generation=stop_after,
            collect_metrics=collect_metrics, publish_dir=publish_dir,
            use_snapshots=use_snapshots, fleet=fleet,
            surrogate=surrogate, surrogate_top_k=surrogate_top_k)
    else:
        runner = ExperimentRunner(
            config, run_dir=args.run_dir, sinks=sinks,
            stop_after_generation=stop_after,
            collect_metrics=collect_metrics, publish_dir=publish_dir,
            use_snapshots=use_snapshots, fleet=fleet,
            surrogate=surrogate, surrogate_top_k=surrogate_top_k)
    tracer = obs.enable_tracing() if trace_path else None
    try:
        outcome = runner.run(resume=args.resume)
    except KeyboardInterrupt:
        if args.json:
            print(json.dumps({"interrupted": True, "resumable": True},
                             indent=2, sort_keys=True))
            return 130
        print("\ninterrupted — rerun with --resume "
              f"{'--run-dir ' + str(args.run_dir) if args.run_dir else ''} "
              "to continue from the last checkpoint", file=sys.stderr)
        return 130
    finally:
        if tracer is not None:
            obs.disable_tracing()
            tracer.write(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)

    if outcome.interrupted:
        payload = {"interrupted": True,
                   "next_generation": outcome.next_generation}
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"stopped after generation "
                  f"{outcome.next_generation - 1}; resume with --resume")
        return 0
    if args.json:
        payload = outcome.payload
        if outcome.artifact_id is not None:
            # result.json itself stays artifact-free (resume
            # byte-identity); only the printed copy names the artifact.
            payload = dict(payload)
            payload["artifact_id"] = outcome.artifact_id
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    return _print_campaign_summary(outcome)


def _print_campaign_summary(outcome) -> int:
    from repro.gp.genome import FlagsGenome
    from repro.gp.parse import infix, unparse
    from repro.gp.simplify import simplify

    if outcome.specialization is not None:
        result = outcome.specialization
        print(f"train speedup : {result.train_speedup:.4f}")
        print(f"novel speedup : {result.novel_speedup:.4f}")
    else:
        result = outcome.generalization
        print(f"avg train speedup : {result.average_train_speedup():.4f}")
        print(f"avg novel speedup : {result.average_novel_speedup():.4f}")
        for score in result.training:
            print(f"  {score.benchmark:<16s} train {score.train_speedup:.4f}"
                  f"  novel {score.novel_speedup:.4f}")
        cross = outcome.cross_validation
        if cross is not None:
            print(f"cross-validation on {cross.machine_name}: "
                  f"avg novel {cross.average_novel_speedup():.4f}")
            for score in cross.scores:
                print(f"  {score.benchmark:<16s} "
                      f"train {score.train_speedup:.4f}"
                      f"  novel {score.novel_speedup:.4f}")
    best = result.best_tree
    if isinstance(best, FlagsGenome):
        # A flags genome has no expression tree to simplify or render
        # as infix; its text form already names every gene.
        print(f"expression    : {best.text()}")
    else:
        best = simplify(best)
        print(f"expression    : {unparse(best)}")
        print(f"infix         : {infix(best)}")
    if outcome.run_dir is not None:
        print(f"run directory : {outcome.run_dir}")
    if outcome.artifact_id is not None:
        print(f"artifact      : {outcome.artifact_id[:12]} "
              f"(full id {outcome.artifact_id})")
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig
    from repro.gp.engine import GPParams

    if args.processes < 1:
        raise SystemExit("repro evolve: --processes must be >= 1")
    if args.fleet and args.processes > 1:
        raise SystemExit("repro evolve: --fleet and --processes are "
                         "mutually exclusive (the fleet owns dispatch)")
    config = None
    if not args.resume:
        if not args.case or not args.benchmark:
            raise SystemExit("repro evolve: CASE and BENCHMARK are "
                             "required (unless resuming with --resume)")
        config = ExperimentConfig(
            mode="specialize",
            case=args.case,
            benchmark=args.benchmark,
            params=GPParams(population_size=args.pop,
                            generations=args.gens, seed=args.seed),
            noise_stddev=args.noise,
            processes=args.processes,
            fitness_cache_dir=_fitness_cache_dir(args),
            verify_outputs=args.verify,
        )
        if not args.json:
            print(f"evolving {args.case} priority for {args.benchmark} "
                  f"(pop {args.pop}, {args.gens} generations, "
                  f"{args.processes} process(es))")
    return _run_campaign(args, config)


def cmd_generalize(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig
    from repro.gp.engine import GPParams

    if args.processes < 1:
        raise SystemExit("repro generalize: --processes must be >= 1")
    if args.fleet and args.processes > 1:
        raise SystemExit("repro generalize: --fleet and --processes are "
                         "mutually exclusive (the fleet owns dispatch)")
    config = None
    if not args.resume:
        training = _comma_list(args.train)
        if not args.case or not training:
            raise SystemExit("repro generalize: CASE and --train are "
                             "required (unless resuming with --resume)")
        config = ExperimentConfig(
            mode="generalize",
            case=args.case,
            training_set=training,
            test_set=_comma_list(args.test),
            params=GPParams(population_size=args.pop,
                            generations=args.gens, seed=args.seed),
            noise_stddev=args.noise,
            processes=args.processes,
            fitness_cache_dir=_fitness_cache_dir(args),
            subset_size=args.subset_size,
            verify_outputs=args.verify,
        )
        if not args.json:
            print(f"evolving general-purpose {args.case} priority over "
                  f"{len(training)} benchmarks (pop {args.pop}, "
                  f"{args.gens} generations, DSS)")
    return _run_campaign(args, config)


def cmd_artifacts(args: argparse.Namespace) -> int:
    from repro.serve.registry import registry_from_env

    registry = registry_from_env(args.store)
    if args.action == "list":
        rows = registry.list(case=args.case, machine=args.machine,
                             channel=args.channel)
        if args.json:
            print(json.dumps({"schema": 1, "store": str(registry.root),
                              "artifacts": rows},
                             indent=2, sort_keys=True))
            return 0
        print(f"artifact store: {registry.root} ({len(rows)} artifact(s))")
        if rows:
            print(f"{'id':<14s}{'case':<12s}{'machine':<12s}"
                  f"{'ver':>4s} {'chan':<8s}expression")
            for row in rows:
                expr = row.get("expression", "?")
                if len(expr) > 32:
                    expr = expr[:29] + "..."
                version = row.get("version")
                chan = ",".join(row.get("channels", ())) or "-"
                print(f"{row['artifact_id'][:12]:<14s}"
                      f"{row['case']:<12s}"
                      f"{row.get('machine', '?'):<12s}"
                      f"{version if version is not None else '-':>4} "
                      f"{chan:<8s}{expr}")
        return 0
    if args.action == "lineage":
        if not args.id:
            raise SystemExit("repro artifacts lineage: needs an "
                             "artifact id (or unambiguous prefix)")
        chain = registry.lineage(args.id)
        if args.json:
            print(json.dumps({"schema": 1, "lineage": chain},
                             indent=2, sort_keys=True))
            return 0
        for depth, row in enumerate(chain):
            marker = "" if depth == 0 else "  " * (depth - 1) + "  └─ "
            if row.get("error"):
                print(f"{marker}{row['artifact_id'][:12]} "
                      f"({row['error']})")
                continue
            version = row.get("version")
            chan = ",".join(row.get("channels", ()))
            notes = [note for note in (
                f"v{version}" if version is not None else None,
                chan or None) if note]
            suffix = f" [{' '.join(notes)}]" if notes else ""
            print(f"{marker}{row['artifact_id'][:12]} "
                  f"{row['case']}/{row.get('machine', '?')}{suffix} "
                  f"{row.get('expression', '')}")
        return 0
    if args.action == "channels":
        tracks = registry.channels()
        if args.json:
            print(json.dumps({"schema": 1, "channels": tracks},
                             indent=2, sort_keys=True))
            return 0
        if not tracks:
            print("no deployment tracks")
            return 0
        for key in sorted(tracks):
            track = tracks[key]
            stable = (track["stable"] or "-")[:12]
            canary = (track["canary"] or "-")[:12]
            print(f"{key}: stable={stable} canary={canary} "
                  f"versions={len(track['versions'])} "
                  f"moves={len(track['log'])}")
        return 0
    if args.action == "show":
        artifact = registry.load(args.id)
        if args.json:
            print(json.dumps(artifact.to_json_dict(), indent=2,
                             sort_keys=True))
            return 0
        print(f"artifact   : {artifact.artifact_id}")
        print(f"case       : {artifact.case}")
        print(f"machine    : {artifact.machine_name} "
              f"({artifact.machine_fingerprint})")
        print(f"pipeline   : {artifact.pipeline_fingerprint}")
        print(f"config     : {artifact.config_fingerprint}")
        print(f"expression : {artifact.expression}")
        for key, value in sorted(artifact.metrics.items()):
            print(f"  {key}: {value}")
        return 0
    # verify
    problems = registry.verify(args.id)
    if args.json:
        print(json.dumps({"schema": 1, "artifact": args.id,
                          "ok": not problems, "problems": problems},
                         indent=2, sort_keys=True))
        return 0 if not problems else 1
    if not problems:
        print(f"{args.id}: OK")
        return 0
    print(f"{args.id}: {len(problems)} problem(s)", file=sys.stderr)
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    return 1


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect the persistent fitness cache: ``stats`` summarizes the
    on-disk corpus, ``export`` streams the decodable records (the
    surrogate trainer's data source, docs/SURROGATE.md)."""
    from repro.metaopt.fitness_cache import FitnessCache, cache_from_env

    cache = cache_from_env(
        explicit_dir=getattr(args, "fitness_cache", None),
        disabled=getattr(args, "no_fitness_cache", False),
    )
    if cache is None or cache.root is None:
        raise SystemExit(
            "repro cache: no cache directory — pass --fitness-cache DIR "
            "or set $REPRO_FITNESS_CACHE")
    assert isinstance(cache, FitnessCache)

    if args.action == "stats":
        total = with_meta = 0
        cycles = 0
        by_case: dict[str, int] = {}
        by_benchmark: dict[str, int] = {}
        for record in cache.scan():
            total += 1
            cycles += record.result.cycles
            if record.meta is not None:
                with_meta += 1
                case = str(record.meta.get("case", "?"))
                bench = str(record.meta.get("benchmark", "?"))
                by_case[case] = by_case.get(case, 0) + 1
                by_benchmark[bench] = by_benchmark.get(bench, 0) + 1
        if args.json:
            print(json.dumps({
                "schema": 1,
                "root": str(cache.root),
                "entries": total,
                "with_meta": with_meta,
                "legacy": total - with_meta,
                "total_cycles": cycles,
                "by_case": by_case,
                "by_benchmark": by_benchmark,
            }, indent=2, sort_keys=True))
            return 0
        print(f"fitness cache: {cache.root}")
        print(f"  entries     : {total}")
        print(f"  with meta   : {with_meta}")
        print(f"  legacy      : {total - with_meta}")
        print(f"  total cycles: {cycles}")
        for title, table in (("case", by_case), ("benchmark", by_benchmark)):
            if table:
                print(f"  by {title}:")
                for name, count in sorted(table.items()):
                    print(f"    {name:<20s}{count:>8d}")
        return 0

    # export
    records = []
    for record in cache.scan():
        meta = record.meta
        if meta is None:
            continue  # legacy entries have no expression to export
        if args.case and meta.get("case") != args.case:
            continue
        if args.benchmark and meta.get("benchmark") != args.benchmark:
            continue
        row = {"key": record.key, "cycles": record.result.cycles}
        row.update(meta)
        records.append(row)
        if args.limit is not None and len(records) >= args.limit:
            break
    if args.json:
        print(json.dumps({"schema": 1, "root": str(cache.root),
                          "records": records},
                         indent=2, sort_keys=True))
        return 0
    print(f"{'case':<12s}{'benchmark':<16s}{'dataset':<8s}"
          f"{'cycles':>10s}  expression")
    for row in records:
        expr = str(row.get("expression", "?"))
        if len(expr) > 48:
            expr = expr[:45] + "..."
        print(f"{str(row.get('case', '?')):<12s}"
              f"{str(row.get('benchmark', '?')):<16s}"
              f"{str(row.get('dataset', '?')):<8s}"
              f"{row['cycles']:>10d}  {expr}")
    print(f"{len(records)} record(s)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.registry import registry_from_env
    from repro.serve.server import ReproServer

    if args.metrics:
        from repro import obs

        obs.enable_metrics()
    autopilot_config = None
    if args.autopilot:
        from repro.autopilot import AutopilotConfig

        overrides = {}
        if args.autopilot_config:
            with open(args.autopilot_config, encoding="utf-8") as handle:
                overrides = json.load(handle)
        overrides["state_dir"] = args.autopilot
        if args.autopilot_sample_rate is not None:
            overrides["sample_rate"] = args.autopilot_sample_rate
        if args.autopilot_threshold is not None:
            overrides["threshold"] = args.autopilot_threshold
        autopilot_config = AutopilotConfig.from_json_dict(overrides)
    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        capacity=args.queue_capacity,
        job_timeout=args.job_timeout,
        registry=registry_from_env(args.artifact_store),
        fitness_cache_dir=_fitness_cache_dir(args),
        use_snapshots=not args.no_snapshot,
        batch_concurrency=args.batch_concurrency,
        autopilot_config=autopilot_config,
    )
    print(f"serving on {server.url} "
          f"({args.workers} worker(s), queue capacity "
          f"{args.queue_capacity}"
          + (f", autopilot in {args.autopilot}" if args.autopilot else "")
          + ")", flush=True)
    return server.serve_forever(drain_timeout=args.drain_timeout)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(args.url, timeout=args.timeout,
                         retries=args.retries)
    payload = client.evaluate(
        args.benchmark,
        case=args.case,
        dataset=args.dataset,
        artifact=args.artifact,
        timeout=args.timeout,
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"benchmark        : {payload['benchmark']} "
          f"({payload['dataset']} data, {payload['machine']})")
    if payload.get("artifact"):
        print(f"artifact         : {payload['artifact'][:12]}")
    print(f"cycles           : {payload['cycles']}")
    print(f"dynamic ops      : {payload['dynamic_ops']} "
          f"(+{payload['squashed_ops']} squashed)")
    print(f"outputs          : {payload['outputs']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Meta Optimization (PLDI 2003) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="compile + simulate a MiniC file")
    run_parser.add_argument("program")
    run_parser.add_argument("--inputs", help="JSON file of global inputs")
    run_parser.add_argument("--machine", choices=sorted(MACHINES),
                            default="epic")
    run_parser.add_argument("--prefetch", action="store_true")
    run_parser.add_argument("--noise", type=float, default=0.0)
    run_parser.set_defaults(func=cmd_run)

    interp_parser = commands.add_parser(
        "interpret", help="run a MiniC file on the reference interpreter")
    interp_parser.add_argument("program")
    interp_parser.add_argument("--inputs")
    interp_parser.set_defaults(func=cmd_interpret)

    verify_parser = commands.add_parser(
        "verify", help="differential-check a MiniC file: interpreter "
                       "vs optimized simulation, IR verifier on")
    verify_parser.add_argument("program")
    verify_parser.add_argument("--inputs", help="JSON file of global inputs")
    verify_parser.add_argument("--machine", choices=sorted(MACHINES),
                               default="epic")
    verify_parser.add_argument("--prefetch", action="store_true")
    verify_parser.add_argument("--unroll", type=int, default=2,
                               help="unroll factor (default 2)")
    verify_parser.add_argument("--no-verify-ir", action="store_true",
                               help="skip the per-stage IR verifier and "
                                    "only compare observables")
    verify_parser.add_argument("--max-steps", type=int, default=10_000_000)
    verify_parser.add_argument("--json", action="store_true",
                               help="print the divergence report as JSON")
    verify_parser.set_defaults(func=cmd_verify)

    fuzz_parser = commands.add_parser(
        "fuzz", help="differential-fuzz the pipeline with random "
                     "well-defined MiniC programs")
    fuzz_parser.add_argument("--count", type=int, default=100)
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument("--machine", choices=sorted(MACHINES),
                             default="epic")
    fuzz_parser.add_argument("--prefetch", action="store_true")
    fuzz_parser.add_argument("--no-verify-ir", action="store_true")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="report divergences without minimizing")
    fuzz_parser.add_argument("--max-steps", type=int, default=500_000)
    fuzz_parser.add_argument("--save-dir", metavar="DIR",
                             help="write each failure's minimized program, "
                                  "inputs and report under DIR")
    fuzz_parser.add_argument("--json", action="store_true")
    fuzz_parser.set_defaults(func=cmd_fuzz)

    suite_parser = commands.add_parser(
        "suite", help="list registered benchmarks, or promote corpus "
                      "reproducers and fuzzer programs into the suite")
    suite_parser.add_argument(
        "action", nargs="?", choices=("list", "promote"), default="list",
        help="'list' (default) prints the registry; 'promote' "
             "differential-verifies programs and adds them to the "
             "promoted suite (src/repro/suite/promoted_programs.json)")
    suite_parser.add_argument("--category", choices=("int", "fp"))
    suite_parser.add_argument("--suite")
    suite_parser.add_argument(
        "--corpus", action="append", metavar="PATH",
        help="promote: a corpus .mc file (NAME.inputs.json beside it) "
             "or a directory of such pairs; repeatable")
    suite_parser.add_argument(
        "--fuzz-seed", action="append", type=int, metavar="N",
        help="promote: generate the fuzzer program with case seed N "
             "and promote it; repeatable")
    suite_parser.add_argument(
        "--split", choices=("train", "novel"), default="train",
        help="promote: experiment-set partition for the programs "
             "promoted by this invocation (default train)")
    suite_parser.add_argument(
        "--registry-file", metavar="FILE",
        help="promote: write to FILE instead of the committed "
             "promoted_programs.json (tests use a scratch file)")
    suite_parser.add_argument("--json", action="store_true")
    suite_parser.set_defaults(func=cmd_suite)

    sim_parser = commands.add_parser(
        "simulate", help="simulate one benchmark under a case study's "
                         "baseline heuristic")
    sim_parser.add_argument("benchmark")
    sim_parser.add_argument("--case", default="hyperblock",
                            choices=TREE_CASES)
    sim_parser.add_argument("--dataset", default="train",
                            choices=("train", "novel"))
    sim_parser.add_argument("--json", action="store_true",
                            help="print machine-readable JSON instead of "
                                 "the counter table")
    sim_parser.add_argument(
        "--artifact", metavar="ID",
        help="simulate under a published heuristic artifact (id or "
             "unambiguous prefix) instead of the case baseline; the "
             "artifact's case study wins over --case")
    sim_parser.add_argument(
        "--artifact-store", metavar="DIR",
        help="artifact store directory (default: "
             "$REPRO_ARTIFACT_STORE or ./artifacts)")
    _add_fitness_cache_flags(sim_parser)
    _add_snapshot_flag(sim_parser)
    _add_obs_flags(sim_parser)
    sim_parser.set_defaults(func=cmd_simulate)

    profile_parser = commands.add_parser(
        "profile", help="compile + simulate one benchmark with "
                        "observability on; print per-pass timing and "
                        "simulator counter tables")
    profile_parser.add_argument("benchmark")
    profile_parser.add_argument(
        "--case", default="hyperblock",
        choices=TREE_CASES)
    profile_parser.add_argument("--dataset", default="train",
                                choices=("train", "novel"))
    profile_parser.add_argument(
        "--surrogate", action="store_true",
        help="also train a surrogate model from the persistent fitness "
             "cache and show the surrogate table (needs "
             "--fitness-cache or $REPRO_FITNESS_CACHE)")
    _add_fitness_cache_flags(profile_parser)
    _add_fleet_flag(profile_parser)
    profile_parser.add_argument(
        "--trace", metavar="FILE",
        help="also write a Chrome trace_event JSON to FILE")
    profile_parser.add_argument(
        "--json", action="store_true",
        help="print the full metrics snapshot as JSON instead of tables")
    profile_parser.set_defaults(func=cmd_profile)

    evolve_parser = commands.add_parser(
        "evolve", help="evolve a specialized priority function")
    evolve_parser.add_argument(
        "case", nargs="?",
        choices=CAMPAIGN_CASES)
    evolve_parser.add_argument("benchmark", nargs="?")
    evolve_parser.add_argument("--pop", type=int, default=24)
    evolve_parser.add_argument("--gens", type=int, default=10)
    evolve_parser.add_argument("--seed", type=int, default=0)
    evolve_parser.add_argument("--noise", type=float, default=0.0)
    evolve_parser.add_argument(
        "--processes", type=int, default=1,
        help="fan fitness evaluations out over a process pool "
             "(1 = serial, the seed-identical reference path)")
    _add_fleet_flag(evolve_parser)
    _add_verify_flag(evolve_parser)
    _add_surrogate_flags(evolve_parser)
    _add_fitness_cache_flags(evolve_parser)
    _add_snapshot_flag(evolve_parser)
    _add_campaign_flags(evolve_parser)
    _add_obs_flags(evolve_parser)
    evolve_parser.set_defaults(func=cmd_evolve)

    general_parser = commands.add_parser(
        "generalize",
        help="evolve one general-purpose priority function over a "
             "training suite (DSS), optionally cross-validating")
    general_parser.add_argument(
        "case", nargs="?",
        choices=CAMPAIGN_CASES)
    general_parser.add_argument(
        "--train", help="comma-separated training benchmarks")
    general_parser.add_argument(
        "--test", help="comma-separated unseen benchmarks to "
                       "cross-validate the evolved function on")
    general_parser.add_argument(
        "--subset-size", type=int, default=None,
        help="DSS subset size (default: |train|/2 + 1)")
    general_parser.add_argument("--pop", type=int, default=24)
    general_parser.add_argument("--gens", type=int, default=10)
    general_parser.add_argument("--seed", type=int, default=0)
    general_parser.add_argument("--noise", type=float, default=0.0)
    general_parser.add_argument("--processes", type=int, default=1)
    _add_fleet_flag(general_parser)
    _add_verify_flag(general_parser)
    _add_surrogate_flags(general_parser)
    _add_fitness_cache_flags(general_parser)
    _add_snapshot_flag(general_parser)
    _add_campaign_flags(general_parser)
    _add_obs_flags(general_parser)
    general_parser.set_defaults(func=cmd_generalize)

    artifacts_parser = commands.add_parser(
        "artifacts", help="inspect the heuristic artifact store")
    artifacts_parser.add_argument(
        "action", choices=("list", "show", "verify", "lineage",
                           "channels"))
    artifacts_parser.add_argument(
        "id", nargs="?",
        help="artifact id or unambiguous prefix (show/verify/lineage)")
    artifacts_parser.add_argument(
        "--store", metavar="DIR",
        help="artifact store directory (default: "
             "$REPRO_ARTIFACT_STORE or ./artifacts)")
    artifacts_parser.add_argument(
        "--case", help="list: only artifacts for this case study")
    artifacts_parser.add_argument(
        "--machine", help="list: only artifacts for this machine")
    artifacts_parser.add_argument(
        "--channel", choices=("stable", "canary"),
        help="list: only artifacts a track currently points at")
    artifacts_parser.add_argument("--json", action="store_true")
    artifacts_parser.set_defaults(func=cmd_artifacts)

    cache_parser = commands.add_parser(
        "cache", help="inspect the persistent fitness cache "
                      "(stats summary or record export)")
    cache_parser.add_argument("action", choices=("stats", "export"))
    cache_parser.add_argument(
        "--case", help="export: only records from this case study")
    cache_parser.add_argument(
        "--benchmark", help="export: only records for this benchmark")
    cache_parser.add_argument(
        "--limit", type=int, metavar="N",
        help="export: stop after N records")
    cache_parser.add_argument("--json", action="store_true")
    _add_fitness_cache_flags(cache_parser)
    cache_parser.set_defaults(func=cmd_cache)

    serve_parser = commands.add_parser(
        "serve", help="run the compile/evaluate HTTP daemon "
                      "(see docs/SERVING.md)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8347,
                              help="listen port (0 = ephemeral)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="warm worker threads draining the "
                                   "job queue")
    serve_parser.add_argument("--queue-capacity", type=int, default=16,
                              help="bounded queue size; beyond this, "
                                   "submissions get 429 + Retry-After")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-job deadline (queued or running "
                                   "past it, a job is marked timeout)")
    serve_parser.add_argument("--drain-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="max seconds the SIGTERM drain waits "
                                   "for in-flight jobs")
    serve_parser.add_argument(
        "--artifact-store", metavar="DIR",
        help="artifact store served under /v1/artifacts (default: "
             "$REPRO_ARTIFACT_STORE or ./artifacts)")
    serve_parser.add_argument(
        "--batch-concurrency", type=int, default=4,
        help="max concurrent /v1/evaluate-batch streams before the "
             "server sheds load with 429 + Retry-After")
    serve_parser.add_argument(
        "--metrics", action="store_true",
        help="collect repro.obs metrics and expose them on /metrics")
    serve_parser.add_argument(
        "--autopilot", metavar="DIR",
        help="enable online continuous re-optimization "
             "(docs/AUTOPILOT.md); DIR holds monitor state, campaign "
             "run directories, and the decision log")
    serve_parser.add_argument(
        "--autopilot-config", metavar="FILE",
        help="JSON file of AutopilotConfig overrides (thresholds, "
             "canary fraction, campaign sizing)")
    serve_parser.add_argument(
        "--autopilot-sample-rate", type=float, default=None,
        metavar="FRACTION",
        help="fraction of evaluate traffic probed against the baseline")
    serve_parser.add_argument(
        "--autopilot-threshold", type=float, default=None,
        metavar="SPEEDUP",
        help="trip a re-optimization campaign when an artifact's "
             "rolling mean speedup-vs-baseline drops below this")
    _add_fitness_cache_flags(serve_parser)
    _add_snapshot_flag(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = commands.add_parser(
        "submit", help="submit one evaluation to a running "
                       "'repro serve' daemon and wait for the result")
    submit_parser.add_argument("benchmark")
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8347",
        help="base URL of the serving daemon")
    submit_parser.add_argument(
        "--case", default=None,
        choices=TREE_CASES,
        help="case study (default: the artifact's, else hyperblock)")
    submit_parser.add_argument("--dataset", default="train",
                               choices=("train", "novel"))
    submit_parser.add_argument("--artifact", metavar="ID",
                               help="evaluate under this published "
                                    "artifact (id or prefix)")
    submit_parser.add_argument("--timeout", type=float, default=60.0)
    submit_parser.add_argument("--retries", type=int, default=5)
    submit_parser.add_argument("--json", action="store_true")
    submit_parser.set_defaults(func=cmd_submit)

    return parser


def _json_failure(message: str, code: int) -> int:
    """The uniform ``--json`` failure document: every subcommand that
    fails under ``--json`` emits exactly one JSON object on stdout."""
    print(json.dumps({"schema": 1, "ok": False, "error": message},
                     indent=2, sort_keys=True))
    return code


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    json_mode = bool(getattr(args, "json", False))
    try:
        return args.func(args)
    except KeyboardInterrupt:
        raise
    except SystemExit as exc:
        # Subcommands raise SystemExit("message") on usage errors;
        # under --json that human text must become the JSON error
        # document (single object on stdout, non-zero exit).
        if json_mode and isinstance(exc.code, str):
            return _json_failure(exc.code, 2)
        raise
    except Exception as exc:
        # Domain errors (unknown benchmark, bad artifact, unreadable
        # run dir, ...): JSON object under --json, otherwise keep the
        # original exception so non-JSON behaviour is unchanged.
        if json_mode:
            return _json_failure(f"{type(exc).__name__}: {exc}", 1)
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
