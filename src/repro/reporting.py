"""Table/figure renderers shared by the benchmark harness.

The paper's figures are bar charts (speedup per benchmark, train vs
novel data) and line charts (best fitness per generation).  The bench
harness reproduces them as aligned text tables so results are readable
in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def speedup_table(
    title: str,
    rows: Iterable[tuple[str, float, float]],
    columns: tuple[str, str] = ("train data", "novel data"),
) -> str:
    """Render Figure 4/6/9/...-style per-benchmark speedup bars.

    ``rows`` yields ``(benchmark, train_speedup, novel_speedup)``; an
    Average row is appended automatically.
    """
    rows = list(rows)
    lines = [title, f"{'benchmark':<16s} {columns[0]:>12s} {columns[1]:>12s}"]
    total_a = 0.0
    total_b = 0.0
    for name, a, b in rows:
        lines.append(f"{name:<16s} {a:>12.3f} {b:>12.3f}")
        total_a += a
        total_b += b
    if rows:
        lines.append(
            f"{'Average':<16s} {total_a / len(rows):>12.3f} "
            f"{total_b / len(rows):>12.3f}"
        )
    return "\n".join(lines)


def single_column_table(
    title: str,
    rows: Iterable[tuple[str, float]],
    column: str = "speedup",
) -> str:
    rows = list(rows)
    lines = [title, f"{'benchmark':<16s} {column:>12s}"]
    total = 0.0
    for name, value in rows:
        lines.append(f"{name:<16s} {value:>12.3f}")
        total += value
    if rows:
        lines.append(f"{'Average':<16s} {total / len(rows):>12.3f}")
    return "\n".join(lines)


def fitness_curve_chart(
    title: str,
    curve: Sequence[float],
    width: int = 50,
) -> str:
    """ASCII rendition of the Figure 5/10/14 fitness-vs-generation
    line charts."""
    if not curve:
        return f"{title}\n(no generations)"
    low = min(curve)
    high = max(curve)
    span = (high - low) or 1.0
    lines = [title, f"best fitness: {low:.3f} .. {high:.3f}"]
    for generation, value in enumerate(curve):
        filled = int(round((value - low) / span * width))
        lines.append(
            f"gen {generation:>3d} {value:7.3f} |{'#' * filled}"
        )
    return "\n".join(lines)


def averages_line(label: str, values: Iterable[float]) -> str:
    values = list(values)
    avg = sum(values) / len(values) if values else 0.0
    return f"{label}: {avg:.3f} (n={len(values)})"


def geometric_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))
