"""Basic blocks.

A block holds a straight-line instruction sequence ending in exactly one
terminator (``br``, ``jmp`` or ``ret``).  Blocks are identified by label
within their function; branch targets are labels, so blocks can be
copied and functions cloned without cyclic references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instr import Instr, Opcode


@dataclass
class Block:
    label: str
    instrs: list[Instr] = field(default_factory=list)
    #: Estimated/blessed execution count, populated by profiling.
    profile_count: int = 0

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} lacks a terminator")
        return self.instrs[-1]

    @property
    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[:-1]
        return list(self.instrs)

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term.op is Opcode.RET:
            return ()
        return term.targets

    def append(self, instr: Instr) -> None:
        if self.instrs and self.instrs[-1].is_terminator:
            raise ValueError(
                f"appending {instr} after terminator in block {self.label}"
            )
        self.instrs.append(instr)

    def is_closed(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator

    def copy(self) -> "Block":
        clone = Block(self.label, [instr.copy() for instr in self.instrs])
        clone.profile_count = self.profile_count
        return clone

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        return "\n".join(lines)
