"""Control-flow-graph utilities over a :class:`~repro.ir.function.Function`.

The CFG is derived (not stored): block labels plus terminator targets
define it.  These helpers compute predecessor maps, traversal orders,
and perform the structural edits passes need (edge splitting, dead block
removal).
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Opcode, jmp


def successors(function: Function) -> dict[str, tuple[str, ...]]:
    return {
        label: function.blocks[label].successors()
        for label in function.block_order
    }


def predecessors(function: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {label: [] for label in function.block_order}
    for label in function.block_order:
        for succ in function.blocks[label].successors():
            preds[succ].append(label)
    return preds


def reachable(function: Function) -> set[str]:
    """Labels reachable from the entry block."""
    seen: set[str] = set()
    stack = [function.block_order[0]]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(function.blocks[label].successors())
    return seen


def remove_unreachable(function: Function) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    keep = reachable(function)
    dead = [label for label in function.block_order if label not in keep]
    for label in dead:
        function.remove_block(label)
    return len(dead)


def reverse_postorder(function: Function) -> list[str]:
    """Reverse postorder over reachable blocks (forward dataflow order)."""
    visited: set[str] = set()
    order: list[str] = []

    def visit(label: str) -> None:
        stack: list[tuple[str, int]] = [(label, 0)]
        visited.add(label)
        while stack:
            current, child_index = stack[-1]
            succs = function.blocks[current].successors()
            if child_index < len(succs):
                stack[-1] = (current, child_index + 1)
                nxt = succs[child_index]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(current)
                stack.pop()

    visit(function.block_order[0])
    order.reverse()
    return order


def split_edge(function: Function, source: str, target: str) -> Block:
    """Insert an empty block on the ``source -> target`` edge.

    Needed when inserting code on a critical edge (e.g. profiling
    counters or spill code).
    """
    source_block = function.blocks[source]
    term = source_block.terminator
    if target not in term.targets:
        raise ValueError(f"no edge {source} -> {target}")
    middle = function.new_block(hint=f"split_{source}_{target}_")
    middle.append(jmp(target))
    new_targets = tuple(
        middle.label if label == target else label for label in term.targets
    )
    term.targets = new_targets
    return middle


def retarget(block: Block, old: str, new: str) -> None:
    """Rewrite every occurrence of branch target ``old`` to ``new``."""
    term = block.terminator
    if old not in term.targets:
        raise ValueError(f"{block.label} does not target {old}")
    term.targets = tuple(new if label == old else label for label in term.targets)


def merge_straightline(function: Function) -> int:
    """Merge ``a -> b`` pairs where a jmp-terminated ``a`` is ``b``'s only
    predecessor and ``b`` has exactly that predecessor.  Returns the
    number of merges performed (a simple cleanup after if-conversion)."""
    merges = 0
    changed = True
    while changed:
        changed = False
        preds = predecessors(function)
        for label in list(function.block_order):
            if label not in function.blocks:
                continue
            block = function.blocks[label]
            term = block.terminator
            if term.op is not Opcode.JMP:
                continue
            target = term.targets[0]
            if target == label or target == function.block_order[0]:
                continue
            if preds[target] != [label]:
                continue
            target_block = function.blocks[target]
            block.instrs = block.instrs[:-1] + target_block.instrs
            function.remove_block(target)
            merges += 1
            changed = True
            break
    return merges


def edge_list(function: Function) -> list[tuple[str, str]]:
    edges: list[tuple[str, str]] = []
    for label in function.block_order:
        for succ in function.blocks[label].successors():
            edges.append((label, succ))
    return edges


def branch_blocks(function: Function) -> list[str]:
    """Labels of blocks ending in a conditional branch."""
    return [
        label
        for label in function.block_order
        if function.blocks[label].terminator.op is Opcode.BR
    ]


def cfg_counts(function: Function) -> dict[str, int]:
    """Quick shape statistics used by tests and reports."""
    preds = predecessors(function)
    return {
        "blocks": len(function.block_order),
        "edges": sum(len(p) for p in preds.values()),
        "branches": len(branch_blocks(function)),
    }
