"""Compiler IR substrate: values, instructions, CFG, analyses, interpreter."""

from repro.ir.block import Block
from repro.ir.function import Function, GlobalArray, Module, GLOBAL_BASE, STACK_BASE
from repro.ir.instr import FUClass, Instr, Opcode, Rel
from repro.ir.interp import Interpreter, InterpError, RunResult
from repro.ir.values import (
    FLOAT,
    INT,
    PRED,
    Imm,
    IRType,
    PReg,
    StackSlot,
    SymRef,
    VReg,
    WORD_BYTES,
)

__all__ = [
    "Block",
    "FLOAT",
    "FUClass",
    "Function",
    "GLOBAL_BASE",
    "GlobalArray",
    "Imm",
    "Instr",
    "IRType",
    "INT",
    "Interpreter",
    "InterpError",
    "Module",
    "Opcode",
    "PRED",
    "PReg",
    "Rel",
    "RunResult",
    "STACK_BASE",
    "StackSlot",
    "SymRef",
    "VReg",
    "WORD_BYTES",
]
