"""Natural-loop detection.

Loops drive two of the paper's case studies indirectly: loop unrolling
(one of the enabled classic optimizations) and data prefetching (Mowry's
algorithm inserts prefetches for affine accesses inside loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import predecessors
from repro.ir.dominators import dominator_sets
from repro.ir.function import Function


@dataclass
class Loop:
    """A natural loop: ``header`` plus the body reached by back edges."""

    header: str
    body: set[str]  # includes the header
    back_edges: list[tuple[str, str]] = field(default_factory=list)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth; an outermost loop has depth 1."""
        level = 1
        walker = self.parent
        while walker is not None:
            level += 1
            walker = walker.parent
        return level

    def exits(self, function: Function) -> list[tuple[str, str]]:
        """Edges leaving the loop body."""
        leaving = []
        for label in sorted(self.body):
            for succ in function.blocks[label].successors():
                if succ not in self.body:
                    leaving.append((label, succ))
        return leaving

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Loop(header={self.header}, blocks={len(self.body)})"


def find_loops(function: Function) -> list[Loop]:
    """All natural loops, nesting resolved, outermost first.

    Back edges are edges ``tail -> head`` where ``head`` dominates
    ``tail``; the loop body is everything that can reach ``tail``
    without passing through ``head``.
    """
    dom_sets = dominator_sets(function)
    preds = predecessors(function)

    loops_by_header: dict[str, Loop] = {}
    for tail in function.block_order:
        if tail not in dom_sets:  # unreachable
            continue
        for head in function.blocks[tail].successors():
            if head not in dom_sets[tail]:
                continue
            body = {head}
            stack = [tail]
            while stack:
                label = stack.pop()
                if label in body:
                    continue
                body.add(label)
                stack.extend(p for p in preds[label] if p in dom_sets)
            loop = loops_by_header.setdefault(head, Loop(head, set()))
            loop.body |= body
            loop.back_edges.append((tail, head))

    loops = list(loops_by_header.values())
    # Resolve nesting: the parent of L is the smallest loop strictly
    # containing L's header among other loops.
    by_size = sorted(loops, key=lambda lp: len(lp.body))
    for loop in by_size:
        for candidate in by_size:
            if candidate is loop:
                continue
            if loop.header in candidate.body and loop.body <= candidate.body:
                if loop.parent is None or len(candidate.body) < len(
                    loop.parent.body
                ):
                    loop.parent = candidate
    for loop in loops:
        if loop.parent is not None:
            loop.parent.children.append(loop)
    return sorted(loops, key=lambda lp: (lp.depth, lp.header))


def loop_depth_of_blocks(function: Function) -> dict[str, int]:
    """Loop-nesting depth of every block (0 when outside all loops)."""
    depth: dict[str, int] = {label: 0 for label in function.block_order}
    for loop in find_loops(function):
        for label in loop.body:
            depth[label] = max(depth[label], loop.depth)
    return depth
