"""IR value kinds: virtual/physical registers and immediates.

The IR is a load/store three-address form over an infinite set of
*virtual registers*.  Register allocation later maps virtual registers
onto the machine's physical register files (general-purpose, floating
point and predicate — Table 3 gives the EPIC machine 64 + 64 + 256).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class IRType(enum.Enum):
    """Value types carried by registers and memory."""

    INT = "int"
    FLOAT = "float"
    PRED = "pred"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IRType.{self.name}"


INT = IRType.INT
FLOAT = IRType.FLOAT
PRED = IRType.PRED

#: Every memory word is 8 bytes; addresses in the IR are *word*
#: addresses, multiplied out to byte addresses only at the cache model.
WORD_BYTES = 8


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register.

    ``uid`` is unique within a function.  ``name`` is a debugging hint
    (source variable name or temporary tag).
    """

    uid: int
    vtype: IRType
    name: str = ""

    def __str__(self) -> str:
        prefix = {INT: "r", FLOAT: "f", PRED: "p"}[self.vtype]
        tag = f".{self.name}" if self.name else ""
        return f"%{prefix}{self.uid}{tag}"


@dataclass(frozen=True, slots=True)
class PReg:
    """A physical register, produced by register allocation."""

    index: int
    vtype: IRType

    def __str__(self) -> str:
        prefix = {INT: "R", FLOAT: "F", PRED: "P"}[self.vtype]
        return f"{prefix}{self.index}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate operand."""

    value: float | int
    vtype: IRType = INT

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class SymRef:
    """A reference to a named memory object (global array or string).

    Resolved to a base word-address by the module's data layout.
    """

    symbol: str

    def __str__(self) -> str:
        return f"@{self.symbol}"


@dataclass(frozen=True, slots=True)
class StackSlot:
    """A function-local stack location (spill slot or local array).

    ``offset`` is a word offset within the frame; resolved against the
    frame base at simulation time.
    """

    offset: int
    name: str = ""

    def __str__(self) -> str:
        tag = f".{self.name}" if self.name else ""
        return f"stack[{self.offset}]{tag}"


Operand = VReg | PReg | Imm | SymRef | StackSlot


def is_register(operand: object) -> bool:
    return isinstance(operand, (VReg, PReg))
