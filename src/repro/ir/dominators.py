"""Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

Dominators underpin natural-loop detection (:mod:`repro.ir.loops`) and
the legality checks of hyperblock region selection: a path is only
mergeable when its blocks are dominated by the region head on the
region-internal edges.
"""

from __future__ import annotations

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function


def immediate_dominators(function: Function) -> dict[str, str | None]:
    """Map each reachable block to its immediate dominator.

    The entry block maps to ``None``.  Unreachable blocks are omitted.
    """
    order = reverse_postorder(function)
    index = {label: position for position, label in enumerate(order)}
    preds = predecessors(function)
    entry = order[0]

    idom: dict[str, str | None] = {entry: entry}

    def intersect(first: str, second: str) -> str:
        while first != second:
            while index[first] > index[second]:
                first = idom[first]  # type: ignore[assignment]
            while index[second] > index[first]:
                second = idom[second]  # type: ignore[assignment]
        return first

    changed = True
    while changed:
        changed = False
        for label in order[1:]:
            candidates = [p for p in preds[label] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: dict[str, str | None] = {}
    for label in order:
        result[label] = None if label == entry else idom[label]
    return result


def dominator_sets(function: Function) -> dict[str, set[str]]:
    """Full dominator set of each reachable block (including itself)."""
    idom = immediate_dominators(function)
    sets: dict[str, set[str]] = {}
    for label in idom:
        doms = {label}
        walker = idom[label]
        while walker is not None:
            doms.add(walker)
            walker = idom[walker]
        sets[label] = doms
    return sets


def dominates(dom_sets: dict[str, set[str]], above: str, below: str) -> bool:
    """True when ``above`` dominates ``below``."""
    return above in dom_sets.get(below, set())
