"""IR instructions.

Each instruction is a three-address operation, optionally *guarded* by a
predicate register (full predication, as on the paper's EPIC target):
when the guard evaluates false the instruction is squashed — it consumes
an issue slot but does not modify state.

Comparison into predicates follows IMPACT's two-target ``cmpp``: one
instruction defines a predicate and its complement simultaneously,
which is what if-conversion needs to guard the two sides of a diamond.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.values import (
    INT,
    PRED,
    Imm,
    IRType,
    Operand,
    PReg,
    StackSlot,
    SymRef,
    VReg,
    is_register,
)


class Opcode(enum.Enum):
    # Integer ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FSQRT = "fsqrt"
    # Conversions
    ITOF = "itof"
    FTOI = "ftoi"
    # Compares
    CMP = "cmp"  # integer 0/1 result
    CMPP = "cmpp"  # predicate pair (dest = rel, dest2 = !rel)
    # Data movement
    MOV = "mov"
    LEA = "lea"  # materialize address of SymRef / StackSlot
    # Memory
    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"
    # Control
    BR = "br"
    JMP = "jmp"
    RET = "ret"
    CALL = "call"
    # Output (benchmark observable result channel)
    OUT = "out"


class Rel(enum.Enum):
    """Comparison relations for CMP/CMPP."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class FUClass(enum.Enum):
    """Functional-unit class an opcode issues to (Table 3)."""

    INT = "int"
    FP = "fp"
    MEM = "mem"
    BRANCH = "branch"


_FU_BY_OPCODE: dict[Opcode, FUClass] = {}
for _op in (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.NEG,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.CMP, Opcode.CMPP, Opcode.MOV, Opcode.LEA, Opcode.OUT,
):
    _FU_BY_OPCODE[_op] = FUClass.INT
for _op in (
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI,
):
    _FU_BY_OPCODE[_op] = FUClass.FP
for _op in (Opcode.LOAD, Opcode.STORE, Opcode.PREFETCH):
    _FU_BY_OPCODE[_op] = FUClass.MEM
for _op in (Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.CALL):
    _FU_BY_OPCODE[_op] = FUClass.BRANCH

TERMINATORS = frozenset({Opcode.BR, Opcode.JMP, Opcode.RET})

COMMUTATIVE = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
     Opcode.FADD, Opcode.FMUL}
)

_NEXT_INSTR_ID = [0]


@dataclass(slots=True)
class Instr:
    """One IR instruction.

    Fields
    ------
    op:        the opcode.
    dest:      destination register (None for stores, branches, ...).
    srcs:      source operands, in positional order.
    guard:     predicate register guarding execution, or None.
    rel:       comparison relation (CMP/CMPP only).
    dest2:     second destination (CMPP's complement predicate).
    targets:   branch targets as block labels (BR: taken, fallthrough;
               JMP: single label).
    callee:    function name (CALL only).
    hazard:    True for operations the compiler must treat as hazards
               (indirect memory access, potentially-side-effecting
               calls) — feeds the hyperblock features of Table 4.
    uid:       globally unique id, stable across copies of a function
               only when copied via Function.clone().
    """

    op: Opcode
    dest: VReg | PReg | None = None
    srcs: tuple[Operand, ...] = ()
    guard: VReg | PReg | None = None
    rel: Rel | None = None
    dest2: VReg | PReg | None = None
    targets: tuple[str, ...] = ()
    callee: str | None = None
    hazard: bool = False
    uid: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.uid == -1:
            _NEXT_INSTR_ID[0] += 1
            self.uid = _NEXT_INSTR_ID[0]

    # -- dataflow views --------------------------------------------------
    def reads(self) -> list[VReg | PReg]:
        """Registers this instruction reads (guard included)."""
        regs = [src for src in self.srcs if is_register(src)]
        if self.guard is not None:
            regs.append(self.guard)
        return regs

    def writes(self) -> list[VReg | PReg]:
        """Registers this instruction writes."""
        regs = []
        if self.dest is not None:
            regs.append(self.dest)
        if self.dest2 is not None:
            regs.append(self.dest2)
        return regs

    @property
    def fu_class(self) -> FUClass:
        return _FU_BY_OPCODE[self.op]

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self.op in (Opcode.LOAD, Opcode.STORE, Opcode.PREFETCH)

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.CALL

    @property
    def has_side_effects(self) -> bool:
        """True when the instruction must not be removed even if its
        result is unused."""
        return self.op in (
            Opcode.STORE,
            Opcode.PREFETCH,
            Opcode.CALL,
            Opcode.OUT,
            Opcode.BR,
            Opcode.JMP,
            Opcode.RET,
        )

    def copy(self) -> "Instr":
        """A fresh instruction (new uid) with identical fields."""
        return Instr(
            op=self.op,
            dest=self.dest,
            srcs=self.srcs,
            guard=self.guard,
            rel=self.rel,
            dest2=self.dest2,
            targets=self.targets,
            callee=self.callee,
            hazard=self.hazard,
        )

    def __str__(self) -> str:
        parts: list[str] = []
        if self.guard is not None:
            parts.append(f"({self.guard})")
        if self.dest is not None:
            dests = str(self.dest)
            if self.dest2 is not None:
                dests += f", {self.dest2}"
            parts.append(f"{dests} = ")
        parts.append(self.op.value)
        if self.rel is not None:
            parts.append(f".{self.rel.value}")
        if self.callee is not None:
            parts.append(f" @{self.callee}")
        if self.srcs:
            parts.append(" " + ", ".join(str(src) for src in self.srcs))
        if self.targets:
            parts.append(" -> " + ", ".join(self.targets))
        return "".join(parts)


# ---------------------------------------------------------------------------
# Convenience constructors used by lowering and by tests
# ---------------------------------------------------------------------------


def mov(dest: VReg, src: Operand, guard: VReg | None = None) -> Instr:
    return Instr(Opcode.MOV, dest=dest, srcs=(src,), guard=guard)


def lea(dest: VReg, target: SymRef | StackSlot) -> Instr:
    return Instr(Opcode.LEA, dest=dest, srcs=(target,))


def load(dest: VReg, addr: Operand, hazard: bool = False,
         guard: VReg | None = None) -> Instr:
    return Instr(Opcode.LOAD, dest=dest, srcs=(addr,), hazard=hazard, guard=guard)


def store(addr: Operand, value: Operand, hazard: bool = False,
          guard: VReg | None = None) -> Instr:
    return Instr(Opcode.STORE, srcs=(addr, value), hazard=hazard, guard=guard)


def binop(op: Opcode, dest: VReg, left: Operand, right: Operand,
          guard: VReg | None = None) -> Instr:
    return Instr(op, dest=dest, srcs=(left, right), guard=guard)


def cmp(dest: VReg, rel: Rel, left: Operand, right: Operand,
        guard: VReg | None = None) -> Instr:
    return Instr(Opcode.CMP, dest=dest, srcs=(left, right), rel=rel, guard=guard)


def cmpp(ptrue: VReg, pfalse: VReg, rel: Rel, left: Operand,
         right: Operand, guard: VReg | None = None) -> Instr:
    if ptrue.vtype is not PRED or pfalse.vtype is not PRED:
        raise TypeError("cmpp destinations must be predicate registers")
    return Instr(
        Opcode.CMPP, dest=ptrue, dest2=pfalse, srcs=(left, right),
        rel=rel, guard=guard,
    )


def br(cond: Operand, taken: str, fallthrough: str) -> Instr:
    return Instr(Opcode.BR, srcs=(cond,), targets=(taken, fallthrough))


def jmp(target: str) -> Instr:
    return Instr(Opcode.JMP, targets=(target,))


def ret(value: Operand | None = None) -> Instr:
    return Instr(Opcode.RET, srcs=(value,) if value is not None else ())


def call(dest: VReg | None, callee: str, args: tuple[Operand, ...]) -> Instr:
    return Instr(Opcode.CALL, dest=dest, srcs=args, callee=callee, hazard=True)


def out(value: Operand) -> Instr:
    return Instr(Opcode.OUT, srcs=(value,))


def prefetch(addr: Operand, guard: VReg | None = None) -> Instr:
    return Instr(Opcode.PREFETCH, srcs=(addr,), guard=guard)
