"""Functions, modules, and the data layout.

A :class:`Module` owns global memory objects (arrays with optional
initial data) and functions.  The data layout assigns every global a
base *word* address in a flat address space; function frames (locals
and spill slots) live above the globals in a downward-growing stack.
Concrete addresses matter because the cache model hashes them into sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import Block
from repro.ir.instr import Instr, Opcode
from repro.ir.values import FLOAT, INT, IRType, VReg

#: Globals start here (leaving low addresses as an unmapped "null" zone).
GLOBAL_BASE = 1024

#: The stack begins here and grows upward (word addresses).
STACK_BASE = 1 << 22


@dataclass
class GlobalArray:
    """A module-level array (all benchmark data lives in these)."""

    name: str
    size: int
    elem_type: IRType = INT
    init: tuple[float | int, ...] = ()

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"global {self.name} must have positive size")
        if len(self.init) > self.size:
            raise ValueError(f"initializer longer than array {self.name}")


class Function:
    """A single IR function: parameters, blocks, and frame bookkeeping."""

    def __init__(self, name: str, params: list[VReg],
                 return_type: IRType | None = None) -> None:
        self.name = name
        self.params = list(params)
        self.return_type = return_type
        self.blocks: dict[str, Block] = {}
        self.block_order: list[str] = []
        self._next_vreg = max((p.uid for p in params), default=-1) + 1
        self._next_label = 0
        self.frame_words = 0
        #: name -> StackSlot word offset, for function-local arrays.
        self.local_arrays: dict[str, tuple[int, int]] = {}

    # -- registers ------------------------------------------------------
    def new_vreg(self, vtype: IRType, name: str = "") -> VReg:
        reg = VReg(self._next_vreg, vtype, name)
        self._next_vreg += 1
        return reg

    def vreg_count(self) -> int:
        return self._next_vreg

    # -- blocks ---------------------------------------------------------
    def new_block(self, hint: str = "bb") -> Block:
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        block = Block(label)
        self.blocks[label] = block
        self.block_order.append(label)
        return block

    def add_block(self, block: Block) -> None:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label}")
        self.blocks[block.label] = block
        self.block_order.append(block.label)

    @property
    def entry(self) -> Block:
        return self.blocks[self.block_order[0]]

    def ordered_blocks(self) -> list[Block]:
        return [self.blocks[label] for label in self.block_order]

    def remove_block(self, label: str) -> None:
        del self.blocks[label]
        self.block_order.remove(label)

    # -- frame ----------------------------------------------------------
    def alloc_stack(self, words: int, name: str = "") -> int:
        """Reserve ``words`` in the frame; returns the word offset."""
        if words <= 0:
            raise ValueError("stack allocation must be positive")
        offset = self.frame_words
        self.frame_words += words
        if name:
            self.local_arrays[name] = (offset, words)
        return offset

    # -- traversal / cloning ---------------------------------------------
    def instructions(self):
        for block in self.ordered_blocks():
            yield from block.instrs

    def instruction_count(self) -> int:
        return sum(len(block.instrs) for block in self.ordered_blocks())

    def clone(self) -> "Function":
        twin = Function(self.name, list(self.params), self.return_type)
        twin._next_vreg = self._next_vreg
        twin._next_label = self._next_label
        twin.frame_words = self.frame_words
        twin.local_arrays = dict(self.local_arrays)
        for label in self.block_order:
            twin.add_block(self.blocks[label].copy())
        return twin

    def validate(self) -> None:
        """Structural sanity: every block closed, every target exists."""
        if not self.block_order:
            raise ValueError(f"function {self.name} has no blocks")
        for block in self.ordered_blocks():
            if not block.is_closed():
                raise ValueError(
                    f"{self.name}/{block.label} is not terminated"
                )
            for index, instr in enumerate(block.instrs):
                if instr.is_terminator and index != len(block.instrs) - 1:
                    raise ValueError(
                        f"{self.name}/{block.label} has a terminator "
                        f"mid-block at {index}"
                    )
            for target in block.successors():
                if target not in self.blocks:
                    raise ValueError(
                        f"{self.name}/{block.label} branches to unknown "
                        f"block {target}"
                    )

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        lines = [f"func @{self.name}({params}):"]
        lines.extend(str(self.blocks[label]) for label in self.block_order)
        return "\n".join(lines)


class Module:
    """A compilation unit: globals plus functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: dict[str, GlobalArray] = {}
        self.functions: dict[str, Function] = {}
        self._layout: dict[str, int] | None = None

    def add_global(self, array: GlobalArray) -> None:
        if array.name in self.globals:
            raise ValueError(f"duplicate global {array.name}")
        self.globals[array.name] = array
        self._layout = None

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        self.functions[function.name] = function

    def layout(self) -> dict[str, int]:
        """Base word address of every global, assigned in insertion
        order starting at GLOBAL_BASE."""
        if self._layout is None:
            addresses: dict[str, int] = {}
            cursor = GLOBAL_BASE
            for name, array in self.globals.items():
                addresses[name] = cursor
                cursor += array.size
            self._layout = addresses
        return self._layout

    def global_end(self) -> int:
        layout = self.layout()
        if not layout:
            return GLOBAL_BASE
        last = max(layout, key=layout.__getitem__)
        return layout[last] + self.globals[last].size

    def clone(self) -> "Module":
        twin = Module(self.name)
        for array in self.globals.values():
            twin.add_global(array)
        for function in self.functions.values():
            twin.add_function(function.clone())
        return twin

    def validate(self) -> None:
        for function in self.functions.values():
            function.validate()
            for instr in function.instructions():
                if instr.op is Opcode.CALL and instr.callee not in self.functions:
                    raise ValueError(
                        f"{function.name} calls unknown function {instr.callee}"
                    )

    def __str__(self) -> str:
        parts = [f"module {self.name}"]
        for array in self.globals.values():
            parts.append(
                f"  global {array.name}[{array.size}] : {array.elem_type.value}"
            )
        parts.extend(str(func) for func in self.functions.values())
        return "\n".join(parts)
