"""Functional IR interpreter.

Executes a module directly over the CFG, independent of any machine
model.  Two jobs:

* **Reference semantics.**  The timing simulator executes scheduled,
  register-allocated code; tests assert that its observable output (the
  ``out`` stream and return value) matches this interpreter's, which
  validates every transformation in the pipeline end to end.
* **Profiling substrate.**  :mod:`repro.profile` runs the interpreter
  with callbacks to collect edge counts and branch histories, producing
  the ``exec_ratio`` and branch-predictability features of Table 4.

Integer semantics are 64-bit two's complement (wrapping); division
truncates toward zero, matching the MiniC frontend's documented rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function, Module, STACK_BASE
from repro.ir.instr import Instr, Opcode, Rel
from repro.ir.values import (
    FLOAT,
    INT,
    Imm,
    PRED,
    StackSlot,
    SymRef,
    VReg,
)

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _INT_MASK
    if value & _INT_SIGN:
        value -= 1 << 64
    return value


def int_div(numerator: int, denominator: int) -> int:
    """C-style truncating division."""
    quotient = abs(numerator) // abs(denominator)
    if (numerator < 0) != (denominator < 0):
        quotient = -quotient
    return quotient


def int_rem(numerator: int, denominator: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return numerator - int_div(numerator, denominator) * denominator


class InterpError(RuntimeError):
    """Raised on runtime faults: step overrun, division by zero, bad call."""


_REL_FUNCS = {
    Rel.EQ: lambda a, b: a == b,
    Rel.NE: lambda a, b: a != b,
    Rel.LT: lambda a, b: a < b,
    Rel.LE: lambda a, b: a <= b,
    Rel.GT: lambda a, b: a > b,
    Rel.GE: lambda a, b: a >= b,
}


def apply_scalar_op(op: Opcode, rel: Rel | None, values: tuple):
    """Evaluate a pure scalar opcode on already-fetched source values.

    Shared between the functional interpreter and the timing simulator
    so the two engines cannot drift semantically.  CMPP returns a
    ``(truth, complement)`` pair; every other opcode returns one value.
    Raises :class:`InterpError` on division by zero.
    """
    if op is Opcode.MOV:
        return values[0]
    if op is Opcode.ADD:
        return wrap_int(values[0] + values[1])
    if op is Opcode.SUB:
        return wrap_int(values[0] - values[1])
    if op is Opcode.MUL:
        return wrap_int(values[0] * values[1])
    if op is Opcode.DIV:
        if values[1] == 0:
            raise InterpError("integer division by zero")
        return wrap_int(int_div(values[0], values[1]))
    if op is Opcode.REM:
        if values[1] == 0:
            raise InterpError("integer remainder by zero")
        return wrap_int(int_rem(values[0], values[1]))
    if op is Opcode.NEG:
        return wrap_int(-values[0])
    if op is Opcode.AND:
        return wrap_int(values[0] & values[1])
    if op is Opcode.OR:
        return wrap_int(values[0] | values[1])
    if op is Opcode.XOR:
        return wrap_int(values[0] ^ values[1])
    if op is Opcode.SHL:
        return wrap_int(values[0] << (values[1] & 63))
    if op is Opcode.SHR:
        return wrap_int(values[0] >> (values[1] & 63))
    if op is Opcode.FADD:
        return values[0] + values[1]
    if op is Opcode.FSUB:
        return values[0] - values[1]
    if op is Opcode.FMUL:
        return values[0] * values[1]
    if op is Opcode.FDIV:
        if values[1] == 0.0:
            raise InterpError("float division by zero")
        return values[0] / values[1]
    if op is Opcode.FNEG:
        return -values[0]
    if op is Opcode.FSQRT:
        return abs(values[0]) ** 0.5
    if op is Opcode.ITOF:
        return float(values[0])
    if op is Opcode.FTOI:
        return wrap_int(int(values[0]))
    if op is Opcode.CMP:
        return 1 if _REL_FUNCS[rel](values[0], values[1]) else 0
    if op is Opcode.CMPP:
        truth = _REL_FUNCS[rel](values[0], values[1])
        return truth, not truth
    raise InterpError(f"not a scalar opcode: {op}")


#: Opcodes handled by :func:`apply_scalar_op`.
SCALAR_OPS = frozenset({
    Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.NEG, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI, Opcode.CMP, Opcode.CMPP,
})


@dataclass
class RunResult:
    """Observable outcome of one program execution."""

    return_value: float | int | None
    outputs: list[float | int]
    steps: int
    blocks_executed: int

    def output_signature(self) -> tuple:
        """Hashable digest used by equivalence tests."""
        return (self.return_value, tuple(self.outputs))


@dataclass
class Interpreter:
    """Executes a module.

    Parameters
    ----------
    module:
        The module to execute (validated by the caller).
    max_steps:
        Dynamic instruction budget; exceeded => :class:`InterpError`
        (guards against accidental infinite loops in generated code).
    on_edge:
        Optional callback ``(function_name, from_label, to_label)``
        invoked for every control-flow edge taken.
    on_branch:
        Optional callback ``(function_name, instr_uid, taken)`` invoked
        for every conditional branch executed.
    """

    module: Module
    max_steps: int = 10_000_000
    on_edge: Callable[[str, str, str], None] | None = None
    on_branch: Callable[[str, int, bool], None] | None = None

    memory: dict[int, float | int] = field(init=False, default_factory=dict)
    outputs: list[float | int] = field(init=False, default_factory=list)
    steps: int = field(init=False, default=0)
    blocks_executed: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._layout = self.module.layout()
        self._sp = STACK_BASE
        for name, array in self.module.globals.items():
            base = self._layout[name]
            for index, value in enumerate(array.init):
                self.memory[base + index] = value

    # -- public API -------------------------------------------------------
    def set_global(self, name: str, values: list[float | int],
                   offset: int = 0) -> None:
        """Write input data into a global array before execution."""
        array = self.module.globals.get(name)
        if array is None:
            raise KeyError(f"no global named {name!r}")
        if offset + len(values) > array.size:
            raise ValueError(
                f"{len(values)} values at offset {offset} overflow "
                f"{name}[{array.size}]"
            )
        base = self._layout[name]
        for index, value in enumerate(values):
            self.memory[base + offset + index] = value

    def read_global(self, name: str, count: int | None = None) -> list:
        array = self.module.globals[name]
        base = self._layout[name]
        length = array.size if count is None else count
        return [self.memory.get(base + i, 0) for i in range(length)]

    def run(self, entry: str = "main",
            args: tuple[float | int, ...] = ()) -> RunResult:
        """Execute ``entry`` and return the observable results."""
        function = self.module.functions.get(entry)
        if function is None:
            raise InterpError(f"no function named {entry!r}")
        value = self._call(function, tuple(args))
        return RunResult(
            return_value=value,
            outputs=list(self.outputs),
            steps=self.steps,
            blocks_executed=self.blocks_executed,
        )

    # -- execution core -----------------------------------------------------
    def _call(self, function: Function,
              args: tuple[float | int, ...]) -> float | int | None:
        if len(args) != len(function.params):
            raise InterpError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        regs: dict[VReg, float | int | bool] = {}
        for param, arg in zip(function.params, args):
            regs[param] = arg
        frame_base = self._sp
        self._sp += function.frame_words

        try:
            label = function.block_order[0]
            while True:
                block = function.blocks[label]
                self.blocks_executed += 1
                next_label: str | None = None
                for instr in block.instrs:
                    self.steps += 1
                    if self.steps > self.max_steps:
                        raise InterpError(
                            f"step budget exceeded in {function.name}"
                        )
                    if instr.guard is not None and not regs.get(instr.guard, False):
                        if instr.is_terminator:
                            raise InterpError("guarded terminator reached false")
                        continue
                    outcome = self._execute(instr, regs, function, frame_base)
                    if instr.op is Opcode.RET:
                        return outcome
                    if instr.is_terminator:
                        next_label = outcome
                        break
                if next_label is None:
                    raise InterpError(
                        f"block {label} fell through without terminator"
                    )
                if self.on_edge is not None:
                    self.on_edge(function.name, label, next_label)
                label = next_label
        finally:
            self._sp = frame_base

    def _value(self, operand, regs, frame_base):
        if isinstance(operand, VReg):
            try:
                return regs[operand]
            except KeyError:
                raise InterpError(f"read of undefined register {operand}")
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, SymRef):
            return self._layout[operand.symbol]
        if isinstance(operand, StackSlot):
            return frame_base + operand.offset
        raise InterpError(f"cannot evaluate operand {operand!r}")

    def _execute(self, instr: Instr, regs, function: Function, frame_base):
        op = instr.op
        val = lambda i: self._value(instr.srcs[i], regs, frame_base)

        if op in SCALAR_OPS:
            result = apply_scalar_op(
                op, instr.rel, tuple(val(i) for i in range(len(instr.srcs)))
            )
            if op is Opcode.CMPP:
                regs[instr.dest], regs[instr.dest2] = result
            else:
                regs[instr.dest] = result
        elif op is Opcode.LEA:
            regs[instr.dest] = self._value(instr.srcs[0], regs, frame_base)
        elif op is Opcode.LOAD:
            address = val(0)
            regs[instr.dest] = self.memory.get(address, 0)
        elif op is Opcode.STORE:
            self.memory[val(0)] = val(1)
        elif op is Opcode.PREFETCH:
            val(0)  # address computed; no architectural effect
        elif op is Opcode.OUT:
            self.outputs.append(val(0))
        elif op is Opcode.CALL:
            callee = self.module.functions.get(instr.callee)
            if callee is None:
                raise InterpError(f"call to unknown function {instr.callee}")
            result = self._call(
                callee, tuple(val(i) for i in range(len(instr.srcs)))
            )
            if instr.dest is not None:
                regs[instr.dest] = result
        elif op is Opcode.BR:
            taken = bool(val(0))
            if self.on_branch is not None:
                self.on_branch(function.name, instr.uid, taken)
            return instr.targets[0] if taken else instr.targets[1]
        elif op is Opcode.JMP:
            return instr.targets[0]
        elif op is Opcode.RET:
            return val(0) if instr.srcs else None
        else:  # pragma: no cover - exhaustive
            raise InterpError(f"unimplemented opcode {op}")
        return None
