"""Liveness analysis.

Backward may-analysis over virtual registers.  Register allocation
builds live ranges from it (Chow–Hennessy's live ranges are exactly the
per-block segments of a variable's liveness); dead-code elimination uses
it to drop unused definitions.

Guarded (predicated) instructions are handled conservatively: a guarded
definition does *not* kill the destination (the old value survives when
the guard is false), but it does count as a def for interference
purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import predecessors, successors
from repro.ir.function import Function
from repro.ir.values import VReg


@dataclass
class BlockLiveness:
    use: set[VReg]
    defs: set[VReg]
    live_in: set[VReg]
    live_out: set[VReg]


def block_use_def(function: Function) -> dict[str, tuple[set[VReg], set[VReg]]]:
    """Upward-exposed uses and downward-visible defs per block."""
    result: dict[str, tuple[set[VReg], set[VReg]]] = {}
    for label in function.block_order:
        use: set[VReg] = set()
        defs: set[VReg] = set()
        for instr in function.blocks[label].instrs:
            for reg in instr.reads():
                if isinstance(reg, VReg) and reg not in defs:
                    use.add(reg)
            for reg in instr.writes():
                if isinstance(reg, VReg) and instr.guard is None:
                    defs.add(reg)
                elif isinstance(reg, VReg):
                    # A guarded def reads the old value implicitly.
                    if reg not in defs:
                        use.add(reg)
                    defs.add(reg)
        result[label] = (use, defs)
    return result


def analyze(function: Function) -> dict[str, BlockLiveness]:
    """Fixed-point live-in/live-out per block."""
    use_def = block_use_def(function)
    succs = successors(function)
    live_in: dict[str, set[VReg]] = {lbl: set() for lbl in function.block_order}
    live_out: dict[str, set[VReg]] = {lbl: set() for lbl in function.block_order}

    changed = True
    while changed:
        changed = False
        for label in reversed(function.block_order):
            out: set[VReg] = set()
            for succ in succs[label]:
                out |= live_in[succ]
            use, defs = use_def[label]
            inn = use | (out - defs)
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True

    return {
        label: BlockLiveness(
            use=use_def[label][0],
            defs=use_def[label][1],
            live_in=live_in[label],
            live_out=live_out[label],
        )
        for label in function.block_order
    }


def live_at_instruction(function: Function) -> dict[int, set[VReg]]:
    """Registers live *after* each instruction, keyed by instruction uid.

    Used to build precise interference graphs.
    """
    liveness = analyze(function)
    live_after: dict[int, set[VReg]] = {}
    for label in function.block_order:
        block = function.blocks[label]
        live = set(liveness[label].live_out)
        for instr in reversed(block.instrs):
            live_after[instr.uid] = set(live)
            for reg in instr.writes():
                if isinstance(reg, VReg) and instr.guard is None:
                    live.discard(reg)
            for reg in instr.reads():
                if isinstance(reg, VReg):
                    live.add(reg)
    return live_after


def dead_definitions(function: Function) -> list[tuple[str, int]]:
    """(label, index) of instructions whose results are never used and
    which have no side effects — candidates for DCE."""
    live_after = live_at_instruction(function)
    dead: list[tuple[str, int]] = []
    for label in function.block_order:
        block = function.blocks[label]
        for index, instr in enumerate(block.instrs):
            if instr.has_side_effects or not instr.writes():
                continue
            written = [r for r in instr.writes() if isinstance(r, VReg)]
            if written and all(
                reg not in live_after[instr.uid] for reg in written
            ):
                dead.append((label, index))
    return dead
