"""CLI tests: every subcommand drives the library end to end."""

import json

import pytest

from repro.cli import main

PROGRAM = """
int data[16];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { acc = acc + data[i]; }
  out(acc);
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    inputs = tmp_path / "inputs.json"
    inputs.write_text(json.dumps({"data": list(range(16)), "n": [10]}))
    return str(path), str(inputs)


class TestRun:
    def test_run_prints_counters(self, program_file, capsys):
        program, inputs = program_file
        assert main(["run", program, "--inputs", inputs]) == 0
        output = capsys.readouterr().out
        assert "outputs          : [45]" in output
        assert "cycles" in output

    def test_run_machine_choice(self, program_file, capsys):
        program, inputs = program_file
        assert main(["run", program, "--inputs", inputs,
                     "--machine", "itanium", "--prefetch"]) == 0
        assert "[45]" in capsys.readouterr().out

    def test_bad_inputs_rejected(self, program_file, tmp_path):
        program, _ = program_file
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit):
            main(["run", program, "--inputs", str(bad)])


class TestInterpret:
    def test_interpret(self, program_file, capsys):
        program, inputs = program_file
        assert main(["interpret", program, "--inputs", inputs]) == 0
        output = capsys.readouterr().out
        assert "outputs      : [45]" in output
        assert "steps" in output


class TestSuite:
    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        output = capsys.readouterr().out
        assert "codrle4" in output
        assert "101.tomcatv" in output

    def test_suite_filters(self, capsys):
        assert main(["suite", "--category", "fp",
                     "--suite", "spec2000"]) == 0
        output = capsys.readouterr().out
        assert "183.equake" in output
        assert "codrle4" not in output


class TestSimulate:
    def test_simulate_benchmark(self, capsys):
        assert main(["simulate", "codrle4"]) == 0
        output = capsys.readouterr().out
        assert "codrle4" in output
        assert "cycles" in output


class TestEvolve:
    def test_evolve_tiny_run(self, capsys):
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2"]) == 0
        output = capsys.readouterr().out
        assert "train speedup" in output
        assert "expression" in output


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_machine_rejected(self, program_file):
        program, _ = program_file
        with pytest.raises(SystemExit):
            main(["run", program, "--machine", "cray"])
