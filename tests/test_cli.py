"""CLI tests: every subcommand drives the library end to end."""

import json

import pytest

from repro.cli import main

PROGRAM = """
int data[16];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { acc = acc + data[i]; }
  out(acc);
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    inputs = tmp_path / "inputs.json"
    inputs.write_text(json.dumps({"data": list(range(16)), "n": [10]}))
    return str(path), str(inputs)


class TestRun:
    def test_run_prints_counters(self, program_file, capsys):
        program, inputs = program_file
        assert main(["run", program, "--inputs", inputs]) == 0
        output = capsys.readouterr().out
        assert "outputs          : [45]" in output
        assert "cycles" in output

    def test_run_machine_choice(self, program_file, capsys):
        program, inputs = program_file
        assert main(["run", program, "--inputs", inputs,
                     "--machine", "itanium", "--prefetch"]) == 0
        assert "[45]" in capsys.readouterr().out

    def test_bad_inputs_rejected(self, program_file, tmp_path):
        program, _ = program_file
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit):
            main(["run", program, "--inputs", str(bad)])


class TestInterpret:
    def test_interpret(self, program_file, capsys):
        program, inputs = program_file
        assert main(["interpret", program, "--inputs", inputs]) == 0
        output = capsys.readouterr().out
        assert "outputs      : [45]" in output
        assert "steps" in output


class TestSuite:
    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        output = capsys.readouterr().out
        assert "codrle4" in output
        assert "101.tomcatv" in output

    def test_suite_filters(self, capsys):
        assert main(["suite", "--category", "fp",
                     "--suite", "spec2000"]) == 0
        output = capsys.readouterr().out
        assert "183.equake" in output
        assert "codrle4" not in output


class TestSimulate:
    def test_simulate_benchmark(self, capsys):
        assert main(["simulate", "codrle4"]) == 0
        output = capsys.readouterr().out
        assert "codrle4" in output
        assert "cycles" in output


class TestEvolve:
    def test_evolve_tiny_run(self, capsys):
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2"]) == 0
        output = capsys.readouterr().out
        assert "train speedup" in output
        assert "expression" in output

    def test_evolve_json_payload(self, capsys):
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "specialize"
        assert payload["benchmark"] == "codrle4"
        assert payload["train_speedup"] >= 1.0 - 1e-9
        assert len(payload["history"]) == 2
        assert payload["config"]["params"]["population_size"] == 8

    def test_evolve_requires_case_and_benchmark(self):
        with pytest.raises(SystemExit):
            main(["evolve", "--pop", "8"])

    def test_evolve_kill_and_resume_byte_identical(self, tmp_path, capsys):
        args = ["evolve", "hyperblock", "codrle4",
                "--pop", "8", "--gens", "2", "--json"]
        assert main(args + ["--run-dir", str(tmp_path / "full")]) == 0
        capsys.readouterr()

        assert main(args + ["--run-dir", str(tmp_path / "killed"),
                            "--stop-after-generation", "0"]) == 0
        interrupted = json.loads(capsys.readouterr().out)
        assert interrupted == {"interrupted": True, "next_generation": 1}

        assert main(["evolve", "--resume", "--json",
                     "--run-dir", str(tmp_path / "killed")]) == 0
        capsys.readouterr()
        assert (tmp_path / "killed/result.json").read_bytes() == \
            (tmp_path / "full/result.json").read_bytes()

    def test_evolve_resume_requires_run_dir(self):
        with pytest.raises(SystemExit):
            main(["evolve", "--resume"])


class TestGeneralize:
    def test_generalize_tiny_run(self, capsys):
        assert main(["generalize", "hyperblock",
                     "--train", "rawcaudio,codrle4",
                     "--pop", "8", "--gens", "2",
                     "--subset-size", "1"]) == 0
        output = capsys.readouterr().out
        assert "avg train speedup" in output
        assert "rawcaudio" in output

    def test_generalize_json_with_cross_validation(self, capsys):
        assert main(["generalize", "hyperblock",
                     "--train", "rawcaudio,codrle4",
                     "--test", "decodrle4",
                     "--pop", "8", "--gens", "2",
                     "--subset-size", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "generalize"
        assert [s["benchmark"] for s in payload["training"]] == \
            ["rawcaudio", "codrle4"]
        assert payload["cross_validation"]["scores"][0]["benchmark"] == \
            "decodrle4"

    def test_generalize_requires_training_set(self):
        with pytest.raises(SystemExit):
            main(["generalize", "hyperblock", "--pop", "8"])


class TestSimulateJson:
    def test_simulate_json_counters(self, capsys):
        assert main(["simulate", "codrle4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "codrle4"
        assert payload["cycles"] > 0
        assert 0.0 <= payload["l1_hit_rate"] <= 1.0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_machine_rejected(self, program_file):
        program, _ = program_file
        with pytest.raises(SystemExit):
            main(["run", program, "--machine", "cray"])


class TestVerify:
    def test_clean_program_exits_zero(self, program_file, capsys):
        program, inputs = program_file
        assert main(["verify", program, "--inputs", inputs]) == 0
        assert "agree" in capsys.readouterr().out

    def test_json_schema(self, program_file, capsys):
        program, inputs = program_file
        assert main(["verify", program, "--inputs", inputs,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["equivalent"] is True
        assert payload["divergences"] == []
        assert payload["options"]["machine"] == "epic-default"

    def test_known_bad_case_exits_nonzero_with_report(
            self, program_file, capsys, monkeypatch):
        """Fault injection: a corrupted simulation must produce a
        non-zero exit and a structured JSON divergence report."""
        from repro.machine import sim as sim_mod

        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = [value + 1 for value in result.outputs]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        program, inputs = program_file
        assert main(["verify", program, "--inputs", inputs,
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["equivalent"] is False
        first = payload["divergences"][0]
        assert first["channel"] == "out"
        assert first["interp_value"] == 45
        assert first["sim_value"] == 46

    def test_human_divergence_report(self, program_file, capsys,
                                     monkeypatch):
        from repro.machine import sim as sim_mod

        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = [value + 1 for value in result.outputs]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        program, inputs = program_file
        assert main(["verify", program, "--inputs", inputs]) == 1
        assert "DIVERGENCE" in capsys.readouterr().err


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--count", "3", "--seed", "11"]) == 0
        output = capsys.readouterr().out
        assert "passed        : 3" in output

    def test_json_schema(self, capsys):
        assert main(["fuzz", "--count", "2", "--seed", "11",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["count"] == 2
        assert payload["passed"] == 2
        assert payload["failures"] == []

    def test_injected_failure_saved_and_nonzero(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.machine import sim as sim_mod

        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = list(result.outputs) + [777]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        save_dir = tmp_path / "found"
        assert main(["fuzz", "--count", "1", "--seed", "0",
                     "--no-shrink", "--save-dir", str(save_dir),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["failures"]) == 1
        saved = sorted(path.name for path in save_dir.iterdir())
        assert any(name.endswith(".mc") for name in saved)
        assert any(name.endswith(".inputs.json") for name in saved)
        assert any(name.endswith(".report.json") for name in saved)


class TestProfile:
    def test_profile_prints_tables(self, capsys):
        assert main(["profile", "codrle4"]) == 0
        output = capsys.readouterr().out
        assert "profile of codrle4" in output
        # per-pass timing table
        for column in ("pass", "runs", "total_s", "mean_s", "ir_delta"):
            assert column in output
        for stage in ("inline", "cleanup", "regalloc", "schedule"):
            assert stage in output
        # simulator counter table
        assert "simulator counter" in output
        assert "cycles" in output

    def test_profile_json_payload(self, capsys):
        assert main(["profile", "codrle4", "--case", "regalloc",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["benchmark"] == "codrle4"
        assert payload["case"] == "regalloc"
        assert payload["cycles"] > 0
        metrics = payload["metrics"]
        assert metrics["counters"]["sim.runs"] == 1
        assert "pipeline.pass_seconds.regalloc" in metrics["histograms"]

    def test_profile_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["profile", "codrle4", "--trace", str(trace)]) == 0
        capsys.readouterr()
        loaded = json.loads(trace.read_text())
        assert set(loaded) == {"traceEvents", "displayTimeUnit"}
        names = {event["name"] for event in loaded["traceEvents"]}
        assert "pipeline:backend" in names
        assert "sim:run" in names

    def test_profile_leaves_observability_disabled(self, capsys):
        from repro import obs

        assert main(["profile", "codrle4"]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_profile_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile"])


class TestObsFlags:
    def test_simulate_metrics_flag(self, capsys):
        assert main(["simulate", "codrle4", "--metrics"]) == 0
        output = capsys.readouterr().out
        assert "simulator counter" in output

    def test_simulate_json_with_metrics(self, capsys):
        assert main(["simulate", "codrle4", "--metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["sim.runs"] == 1

    def test_simulate_json_without_metrics_has_no_key(self, capsys):
        assert main(["simulate", "codrle4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload

    def test_evolve_metrics_events_in_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2", "--metrics",
                     "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in
                  (run_dir / "events.jsonl").read_text().splitlines()]
        metrics = [e for e in events if e["event"] == "metrics"]
        assert [e["generation"] for e in metrics] == [0, 1]
        assert metrics[0]["metrics"]["counters"]["gp.evaluations"] > 0

    def test_evolve_trace_flag(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        names = {event["name"] for event in
                 json.loads(trace.read_text())["traceEvents"]}
        assert "engine:generation" in names
        assert "engine:evaluation" in names


class TestCacheCommand:
    def warm_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2",
                     "--fitness-cache", cache_dir]) == 0
        return cache_dir

    def test_stats_json(self, tmp_path, capsys):
        cache_dir = self.warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--fitness-cache", cache_dir,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["entries"] > 0
        assert payload["with_meta"] == payload["entries"]
        assert payload["legacy"] == 0
        assert payload["by_case"] == {"hyperblock": payload["entries"]}
        assert payload["by_benchmark"] == {"codrle4": payload["entries"]}

    def test_stats_human(self, tmp_path, capsys):
        cache_dir = self.warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--fitness-cache", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "entries" in output
        assert "hyperblock" in output

    def test_export_json_filters(self, tmp_path, capsys):
        cache_dir = self.warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "export", "--fitness-cache", cache_dir,
                     "--case", "hyperblock", "--limit", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 3
        for row in payload["records"]:
            assert row["case"] == "hyperblock"
            assert row["expression"]
            assert row["cycles"] > 0
        capsys.readouterr()
        assert main(["cache", "export", "--fitness-cache", cache_dir,
                     "--case", "no-such-case", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["records"] == []

    def test_cache_without_directory_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_FITNESS_CACHE", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "stats"])


class TestSurrogateFlags:
    def test_evolve_surrogate_smoke(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        run_dir = tmp_path / "run"
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2",
                     "--surrogate", "--surrogate-top-k", "3",
                     "--fitness-cache", cache_dir,
                     "--run-dir", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "specialize"
        state = json.loads((run_dir / "surrogate.json").read_text())
        assert state["top_k"] == 3

    def test_profile_surrogate_table(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2",
                     "--fitness-cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["profile", "codrle4", "--case", "hyperblock",
                     "--surrogate", "--fitness-cache", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "surrogate counter" in output
        assert "train_pairs" in output
        assert "baseline_prediction" in output

    def test_profile_surrogate_without_cache_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_FITNESS_CACHE", raising=False)
        with pytest.raises(SystemExit):
            main(["profile", "codrle4", "--case", "hyperblock",
                  "--surrogate"])
