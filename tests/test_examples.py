"""The shipped examples actually run (fast ones in-process)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "cycles" in output
        assert "simulated outputs" in output

    def test_custom_hook_runs(self, capsys):
        module = load_example("custom_compiler_hook.py")
        module.main()
        output = capsys.readouterr().out
        assert "stock pipeline" in output
        assert "identical outputs" in output

    def test_specialize_example_importable(self):
        # The GP examples are slower; just validate they import and
        # expose main() (their logic is covered by repro.metaopt tests).
        module = load_example("specialize_hyperblock.py")
        assert callable(module.main)
        module = load_example("general_purpose_prefetch.py")
        assert callable(module.main)
