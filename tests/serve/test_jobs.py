"""JobQueue lifecycle: backpressure, cancellation, timeouts, drain.

All tests inject tiny synchronous handlers (gated on events where
ordering matters) so they run in milliseconds and never touch the
compiler."""

import threading
import time

import pytest

from repro.serve.jobs import Job, JobQueue, QueueFull


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def echo_handler(kind, params):
    return {"kind": kind, **params}


class TestHappyPath:
    def test_submit_runs_to_done(self):
        queue = JobQueue(echo_handler, workers=1, capacity=4)
        job = queue.submit("evaluate", {"x": 1})
        assert job.id.startswith("job-")
        assert wait_until(lambda: queue.get(job.id).finished)
        done = queue.get(job.id)
        assert done.state == "done"
        assert done.result == {"kind": "evaluate", "x": 1}
        assert done.error is None
        assert done.started_at is not None
        assert done.finished_at is not None
        queue.drain(timeout=5.0)

    def test_handler_exception_becomes_failed(self):
        def boom(kind, params):
            raise ValueError("no such benchmark")

        queue = JobQueue(boom, workers=1, capacity=4)
        job = queue.submit("evaluate", {})
        assert wait_until(lambda: queue.get(job.id).finished)
        failed = queue.get(job.id)
        assert failed.state == "failed"
        assert failed.result is None
        assert "ValueError: no such benchmark" == failed.error
        assert queue.stats()["failed"] == 1
        queue.drain(timeout=5.0)

    def test_jobs_run_in_fifo_order(self):
        order = []
        queue = JobQueue(lambda kind, params: order.append(params["n"]),
                         workers=1, capacity=16)
        for n in range(5):
            queue.submit("evaluate", {"n": n})
        assert queue.drain(timeout=5.0)
        assert order == [0, 1, 2, 3, 4]

    def test_job_json_shape(self):
        job = Job(id="job-000001", kind="evaluate", params={},
                  deadline=None)
        assert set(job.to_json_dict()) == {
            "id", "kind", "priority", "state", "result", "error",
            "cancel_requested", "created_at", "started_at",
            "finished_at"}


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(10),
                         workers=1, capacity=2)
        queue.submit("evaluate", {})  # occupies the worker
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queue.submit("evaluate", {})
        queue.submit("evaluate", {})  # queue now at capacity
        with pytest.raises(QueueFull) as excinfo:
            queue.submit("evaluate", {})
        assert excinfo.value.capacity == 2
        assert excinfo.value.retry_after > 0
        assert queue.stats()["rejected"] == 1
        gate.set()
        assert queue.drain(timeout=5.0)

    def test_recovers_after_shedding(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(10) and {},
                         workers=1, capacity=1)
        queue.submit("evaluate", {})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queue.submit("evaluate", {})
        with pytest.raises(QueueFull):
            queue.submit("evaluate", {})
        gate.set()
        assert wait_until(lambda: queue.depth() == 0)
        job = queue.submit("evaluate", {})  # accepted again
        assert wait_until(lambda: queue.get(job.id).finished)
        assert queue.drain(timeout=5.0)


class TestCancel:
    def test_cancel_queued_job(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(10),
                         workers=1, capacity=4)
        queue.submit("evaluate", {})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queued = queue.submit("evaluate", {})
        assert queue.cancel(queued.id) is True
        assert queue.get(queued.id).state == "cancelled"
        gate.set()
        assert queue.drain(timeout=5.0)
        # the cancelled job never ran
        assert queue.stats()["done"] == 1
        assert queue.stats()["cancelled"] == 1

    def test_cancel_running_or_unknown_is_refused(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(10),
                         workers=1, capacity=4)
        job = queue.submit("evaluate", {})
        assert wait_until(lambda: queue.get(job.id).state == "running")
        assert queue.cancel(job.id) is False
        # ... but the running job is flagged for cooperative cancel
        assert queue.get(job.id).cancel_requested is True
        assert queue.cancel("job-999999") is False
        gate.set()
        assert queue.drain(timeout=5.0)
        assert queue.get(job.id).state == "done"

    def test_cooperative_cancel_seen_by_handler(self):
        flagged = threading.Event()
        observed = []

        def handler(kind, params):
            current = queue.current_job()
            flagged.wait(10)
            observed.append(current.cancel_requested)
            return {"stopped_early": current.cancel_requested}

        queue = JobQueue(handler, workers=1, capacity=4)
        job = queue.submit("campaign-step", {})
        assert wait_until(lambda: queue.get(job.id).state == "running")
        queue.cancel(job.id)  # running: flag only
        flagged.set()
        assert wait_until(lambda: queue.get(job.id).finished)
        assert observed == [True]
        # the handler honored the flag and still finished normally
        assert queue.get(job.id).state == "done"
        assert queue.get(job.id).result == {"stopped_early": True}
        assert queue.drain(timeout=5.0)


class TestPriority:
    def test_interactive_preempts_queued_background(self):
        order = []
        gate = threading.Event()

        def handler(kind, params):
            if params.get("hold"):
                gate.wait(10)
            order.append(params["n"])

        queue = JobQueue(handler, workers=1, capacity=16)
        queue.submit("evaluate", {"n": "hold", "hold": True})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queue.submit("autopilot-step", {"n": "bg1"},
                     priority="background")
        queue.submit("autopilot-step", {"n": "bg2"},
                     priority="background")
        queue.submit("evaluate", {"n": "fg1"})
        queue.submit("evaluate", {"n": "fg2"})
        gate.set()
        # drain would cancel queued background work, so wait for the
        # backlog to empty first
        assert wait_until(lambda: len(order) == 5)
        assert queue.drain(timeout=10.0)
        # both interactive jobs ran before any queued background job
        assert order == ["hold", "fg1", "fg2", "bg1", "bg2"]

    def test_unknown_priority_rejected(self):
        queue = JobQueue(echo_handler, workers=1, capacity=4)
        with pytest.raises(ValueError, match="priority"):
            queue.submit("evaluate", {}, priority="urgent")
        queue.drain(timeout=5.0)

    def test_capacity_accounted_per_class(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(10),
                         workers=1, capacity=1)
        queue.submit("evaluate", {})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queue.submit("evaluate", {})
        with pytest.raises(QueueFull):
            queue.submit("evaluate", {})
        # the background class has its own accounting: still room
        queue.submit("autopilot-step", {}, priority="background")
        with pytest.raises(QueueFull):
            queue.submit("autopilot-step", {}, priority="background")
        assert queue.stats()["background_depth"] == 1
        gate.set()
        assert queue.drain(timeout=5.0)

    def test_background_jobs_have_no_deadline(self):
        queue = JobQueue(echo_handler, workers=1, capacity=4,
                         job_timeout=0.05)
        fg = queue.submit("evaluate", {})
        bg = queue.submit("autopilot-step", {}, priority="background")
        assert fg.deadline is not None
        assert bg.deadline is None
        queue.drain(timeout=5.0)

    def test_drain_cancels_queued_background_jobs(self):
        gate = threading.Event()
        ran = []

        def handler(kind, params):
            if params.get("hold"):
                gate.wait(10)
            ran.append(params["n"])

        queue = JobQueue(handler, workers=1, capacity=16)
        queue.submit("evaluate", {"n": "hold", "hold": True})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        queued_bg = queue.submit("autopilot-step", {"n": "bg"},
                                 priority="background")
        queued_fg = queue.submit("evaluate", {"n": "fg"})
        drainer = threading.Thread(
            target=lambda: queue.drain(timeout=10.0))
        drainer.start()
        gate.set()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        # queued interactive work finished; queued background work was
        # cancelled (it is a resumable checkpointed step)
        assert ran == ["hold", "fg"]
        assert queue.get(queued_fg.id).state == "done"
        assert queue.get(queued_bg.id).state == "cancelled"
        assert "drain" in queue.get(queued_bg.id).error


class TestTimeout:
    def test_queued_past_deadline_never_runs(self):
        gate = threading.Event()
        ran = []
        queue = JobQueue(
            lambda kind, params: (gate.wait(10), ran.append(params))[0],
            workers=1, capacity=4, job_timeout=0.05)
        queue.submit("evaluate", {"first": True})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        stale = queue.submit("evaluate", {"second": True})
        time.sleep(0.15)  # let the queued job's deadline lapse
        gate.set()
        assert wait_until(lambda: queue.get(stale.id).finished)
        assert queue.get(stale.id).state == "timeout"
        assert "waiting in queue" in queue.get(stale.id).error
        assert {"second": True} not in ran
        queue.drain(timeout=5.0)

    def test_running_past_deadline_discards_result(self):
        queue = JobQueue(
            lambda kind, params: time.sleep(0.15) or {"late": True},
            workers=1, capacity=4, job_timeout=0.05)
        job = queue.submit("evaluate", {})
        assert wait_until(lambda: queue.get(job.id).finished)
        finished = queue.get(job.id)
        assert finished.state == "timeout"
        assert finished.result is None
        assert "result discarded" in finished.error
        assert queue.stats()["timeout"] == 1
        queue.drain(timeout=5.0)

    def test_no_timeout_by_default(self):
        queue = JobQueue(echo_handler, workers=1, capacity=4)
        job = queue.submit("evaluate", {})
        assert job.deadline is None
        queue.drain(timeout=5.0)


class TestDrain:
    def test_drain_finishes_backlog(self):
        done = []
        queue = JobQueue(lambda kind, params: done.append(params["n"]),
                         workers=2, capacity=16)
        for n in range(10):
            queue.submit("evaluate", {"n": n})
        assert queue.drain(timeout=10.0) is True
        assert sorted(done) == list(range(10))
        assert queue.stats()["depth"] == 0
        assert queue.stats()["running"] == 0

    def test_drain_rejects_new_submissions(self):
        queue = JobQueue(echo_handler, workers=1, capacity=4)
        assert queue.drain(timeout=5.0)
        assert queue.accepting is False
        with pytest.raises(RuntimeError, match="draining"):
            queue.submit("evaluate", {})

    def test_drain_times_out_on_stuck_job(self):
        gate = threading.Event()
        queue = JobQueue(lambda kind, params: gate.wait(30),
                         workers=1, capacity=4)
        queue.submit("evaluate", {})
        assert wait_until(lambda: queue.stats()["running"] == 1)
        assert queue.drain(timeout=0.1) is False
        gate.set()
        assert queue.drain(timeout=5.0) is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            JobQueue(echo_handler, workers=0)
        with pytest.raises(ValueError):
            JobQueue(echo_handler, capacity=0)

    def test_stats_shape(self):
        queue = JobQueue(echo_handler, workers=3, capacity=7)
        stats = queue.stats()
        assert stats["capacity"] == 7
        assert stats["workers"] == 3
        assert stats["accepting"] is True
        assert {"submitted", "rejected", "done", "failed", "cancelled",
                "timeout", "depth", "running"} <= set(stats)
        queue.drain(timeout=5.0)
