"""CLI surface of the serving subsystem: the publish → artifacts →
simulate round trip, plus the uniform ``--json`` error contract."""

import json

import pytest

from repro.cli import main


def only_json(capsys):
    """Assert stdout holds exactly one JSON document and return it."""
    output = capsys.readouterr().out
    return json.loads(output)


class TestPublishRoundTrip:
    def test_evolve_publish_artifacts_simulate(self, tmp_path, capsys):
        store = str(tmp_path / "store")

        # evolve --publish: campaign JSON carries the artifact id
        assert main(["evolve", "hyperblock", "codrle4",
                     "--pop", "8", "--gens", "2",
                     "--publish", store, "--json"]) == 0
        campaign = only_json(capsys)
        artifact_id = campaign["artifact_id"]
        assert len(artifact_id) == 64

        # artifacts list sees it
        assert main(["artifacts", "list", "--store", store,
                     "--json"]) == 0
        listing = only_json(capsys)
        assert [row["artifact_id"] for row in listing["artifacts"]] == \
            [artifact_id]

        # artifacts show resolves a prefix to the full document
        assert main(["artifacts", "show", artifact_id[:10],
                     "--store", store, "--json"]) == 0
        document = only_json(capsys)
        assert document["artifact_id"] == artifact_id
        assert document["case"] == "hyperblock"
        assert document["expression"] == campaign["best_expression"]

        # artifacts verify: freshly published artifacts are valid
        assert main(["artifacts", "verify", artifact_id,
                     "--store", store, "--json"]) == 0
        verdict = only_json(capsys)
        assert verdict["ok"] is True and verdict["problems"] == []

        # simulate --artifact deploys it
        assert main(["simulate", "codrle4",
                     "--artifact", artifact_id[:8],
                     "--artifact-store", store, "--json"]) == 0
        payload = only_json(capsys)
        assert payload["artifact"] == artifact_id
        assert payload["case"] == "hyperblock"
        assert payload["benchmark"] == "codrle4"
        assert payload["cycles"] > 0

        # human mode mentions the deployed artifact
        assert main(["simulate", "codrle4",
                     "--artifact", artifact_id[:8],
                     "--artifact-store", store]) == 0
        human = capsys.readouterr().out
        assert f"artifact         : {artifact_id[:12]}" in human

        # human-mode listing is a table, not JSON
        assert main(["artifacts", "list", "--store", store]) == 0
        table = capsys.readouterr().out
        assert "artifact store:" in table
        assert artifact_id[:12] in table

    def test_artifacts_list_empty_store(self, tmp_path, capsys):
        assert main(["artifacts", "list",
                     "--store", str(tmp_path / "empty"), "--json"]) == 0
        listing = only_json(capsys)
        assert listing["artifacts"] == []


class TestUniformJsonFailures:
    """Every subcommand failing under ``--json`` prints exactly one
    JSON object — ``{"schema": 1, "ok": false, "error": ...}`` — on
    stdout and exits non-zero."""

    def assert_failure_doc(self, capsys, code, expect_code=1):
        assert code == expect_code
        document = only_json(capsys)
        assert document["schema"] == 1
        assert document["ok"] is False
        assert document["error"]
        return document

    def test_simulate_unknown_benchmark(self, capsys):
        code = main(["simulate", "no-such-benchmark", "--json"])
        document = self.assert_failure_doc(capsys, code)
        assert "no-such-benchmark" in document["error"]

    def test_simulate_missing_artifact(self, tmp_path, capsys):
        code = main(["simulate", "codrle4", "--artifact", "feedface",
                     "--artifact-store", str(tmp_path), "--json"])
        document = self.assert_failure_doc(capsys, code)
        assert "feedface" in document["error"]

    def test_artifacts_show_missing(self, tmp_path, capsys):
        code = main(["artifacts", "show", "feedface",
                     "--store", str(tmp_path), "--json"])
        self.assert_failure_doc(capsys, code)

    def test_evolve_usage_error(self, capsys):
        code = main(["evolve", "hyperblock", "codrle4",
                     "--processes", "0", "--json"])
        document = self.assert_failure_doc(capsys, code, expect_code=2)
        assert "--processes" in document["error"]

    def test_submit_unreachable_server(self, capsys):
        code = main(["submit", "codrle4",
                     "--url", "http://127.0.0.1:9",  # discard port
                     "--retries", "0", "--json"])
        self.assert_failure_doc(capsys, code)

    def test_without_json_errors_keep_raising(self):
        with pytest.raises(SystemExit):
            main(["evolve", "hyperblock", "codrle4", "--processes", "0"])
        with pytest.raises(Exception):
            main(["simulate", "no-such-benchmark"])
