"""End-to-end serving daemon tests.

A real :class:`ReproServer` is booted on an ephemeral port (port 0)
per fixture.  The expensive fixtures (real compile/simulate handlers)
are module-scoped; backpressure/timeout/cancel tests inject gated toy
handlers so they exercise the HTTP contract in milliseconds.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.gp.parse import unparse
from repro.machine.descr import DEFAULT_EPIC
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.serve.artifact import build_artifact
from repro.serve.client import JobFailed, ServeClient, ServeError, ServerBusy
from repro.serve.jobs import HarnessPool, run_evaluate, simulation_payload
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import MAX_BODY_BYTES, ReproServer

REPO_ROOT = Path(__file__).resolve().parents[2]

BENCHMARK = "codrle4"


def canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


# ---------------------------------------------------------------------------
# Real-handler server: byte-identity, artifacts, compile.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def store(tmp_path_factory):
    registry = ArtifactRegistry(tmp_path_factory.mktemp("store"))
    artifact = build_artifact(
        case="hyperblock",
        expression=unparse(BASELINE_TREES["hyperblock"]()),
        machine=DEFAULT_EPIC,
        training_config={"mode": "specialize", "benchmark": BENCHMARK},
        metrics={"train_speedup": 1.0},
        created_at=1_700_000_000.0,
    )
    registry.save(artifact)
    return registry, artifact


@pytest.fixture(scope="module")
def server(store):
    registry, _ = store
    srv = ReproServer(port=0, workers=4, capacity=32, registry=registry)
    srv.start()
    yield srv
    srv.drain(timeout=30.0)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url, timeout=30.0)


@pytest.fixture(scope="module")
def direct_payloads(store):
    """What the library produces without the daemon in the loop."""
    _, artifact = store
    harness = EvaluationHarness(case_study("hyperblock"))
    baseline = simulation_payload(
        "hyperblock", harness.case.machine.name, BENCHMARK, "train",
        harness.baseline_result(BENCHMARK, "train"))
    deployed = simulation_payload(
        "hyperblock", harness.case.machine.name, BENCHMARK, "train",
        harness.simulate(artifact.tree(), BENCHMARK, "train"),
        artifact_id=artifact.artifact_id)
    return {"baseline": baseline, "deployed": deployed}


class TestHealthAndMetrics:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["capacity"] == 32
        assert health["workers"] == 4

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert metrics["schema"] == 1
        assert {"queue", "requests", "codegen_cache", "obs"} <= set(metrics)
        assert metrics["queue"]["capacity"] == 32

    def test_requests_are_counted(self, server, client):
        client.health()
        assert server.request_counters.get("200", 0) > 0


class TestByteIdentity:
    def test_evaluate_matches_direct_library_call(self, client,
                                                  direct_payloads):
        served = client.evaluate(BENCHMARK, case="hyperblock")
        assert canonical(served) == canonical(direct_payloads["baseline"])

    def test_evaluate_under_artifact_matches_direct(self, client, store,
                                                    direct_payloads):
        _, artifact = store
        served = client.evaluate(BENCHMARK,
                                 artifact=artifact.artifact_id[:10])
        assert canonical(served) == canonical(direct_payloads["deployed"])

    def test_run_evaluate_agrees_with_server(self, store, direct_payloads):
        """The handler the server calls is the same function — pin it."""
        registry, artifact = store
        payload = run_evaluate(
            {"benchmark": BENCHMARK, "artifact": artifact.short_id},
            HarnessPool(), registry=registry)
        assert canonical(payload) == canonical(direct_payloads["deployed"])

    def test_eight_concurrent_clients_byte_identical(self, server,
                                                     direct_payloads):
        expected = canonical(direct_payloads["baseline"])
        results = [None] * 8
        errors = []

        def worker(slot):
            try:
                mine = ServeClient(server.url, timeout=60.0, retries=8)
                results[slot] = canonical(
                    mine.evaluate(BENCHMARK, case="hyperblock",
                                  timeout=120.0))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert errors == []
        assert all(result == expected for result in results)


class TestCompileEndpoint:
    SOURCE = """
    int main() {
        int i; int total;
        total = 0;
        for (i = 0; i < 8; i = i + 1) { total = total + i; }
        return total;
    }
    """

    def test_compile_static_stats(self, client):
        payload = client.compile(self.SOURCE)
        assert payload["machine"] == "epic"
        assert "main" in payload["functions"]
        assert payload["functions"]["main"]["blocks"] >= 1
        assert payload["artifact"] is None

    def test_compile_and_run(self, client):
        payload = client.compile(self.SOURCE, run=True)
        assert payload["simulation"]["return_value"] == 28
        assert payload["simulation"]["cycles"] > 0

    def test_compile_bad_source_fails_job(self, client):
        with pytest.raises(JobFailed) as excinfo:
            client.compile("int main( {")
        assert excinfo.value.payload["state"] == "failed"


class TestArtifactRoutes:
    def test_list(self, client, store):
        _, artifact = store
        rows = client.artifacts()
        assert [row["artifact_id"] for row in rows] == \
            [artifact.artifact_id]

    def test_get_by_prefix(self, client, store):
        _, artifact = store
        doc = client.artifact(artifact.short_id)
        assert doc["artifact_id"] == artifact.artifact_id
        assert doc["expression"] == artifact.expression

    def test_unknown_artifact_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.artifact("feedfacefeed")
        assert excinfo.value.status == 404


class TestHttpContract:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v2/nothing")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/evaluate", data=b"not json at all",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_non_object_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/evaluate", data=b"[1, 2]",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_body_413(self, client):
        huge = {"benchmark": BENCHMARK, "pad": "x" * (MAX_BODY_BYTES + 1)}
        with pytest.raises(ServeError) as excinfo:
            client.submit("evaluate", huge)
        assert excinfo.value.status == 413

    def test_bad_benchmark_fails_job_not_server(self, client):
        with pytest.raises(JobFailed):
            client.evaluate("no-such-benchmark")
        assert client.health()["status"] == "ok"


# ---------------------------------------------------------------------------
# Injected-handler servers: backpressure, timeout, cancel, drain.
# ---------------------------------------------------------------------------

@pytest.fixture()
def gated_server():
    gate = threading.Event()
    srv = ReproServer(port=0, workers=1, capacity=1,
                      handler=lambda kind, params: gate.wait(30) and {})
    srv.start()
    yield srv, gate
    gate.set()
    srv.drain(timeout=10.0)


def saturate(server, gate_depth=1):
    """Fill the worker and the queue; returns the raw submit URL."""
    client = ServeClient(server.url, retries=0)
    client.submit("evaluate", {})  # occupies the single worker
    deadline = time.monotonic() + 5
    while server.queue.stats()["running"] < 1:
        assert time.monotonic() < deadline
        time.sleep(0.005)
    client.submit("evaluate", {})  # fills capacity-1 queue
    return server.url + "/v1/evaluate"


class TestBackpressure:
    def test_queue_full_sheds_429_with_retry_after(self, gated_server):
        srv, _ = gated_server
        url = saturate(srv)
        request = urllib.request.Request(
            url, data=b"{}", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        body = json.loads(excinfo.value.read())
        assert "capacity" in body["error"]

    def test_client_gives_up_with_server_busy(self, gated_server):
        srv, _ = gated_server
        saturate(srv)
        impatient = ServeClient(srv.url, retries=1, backoff=0.01,
                                sleep=lambda s: None)
        with pytest.raises(ServerBusy):
            impatient.submit("evaluate", {})
        assert impatient.retry_count == 1

    def test_client_retry_succeeds_once_queue_drains(self, gated_server):
        srv, gate = gated_server
        saturate(srv)
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            gate.set()  # free the worker so the queue drains
            time.sleep(0.05)

        patient = ServeClient(srv.url, retries=8, backoff=0.01,
                              sleep=sleep)
        submitted = patient.submit("evaluate", {})
        assert submitted["state"] == "queued"
        # the first backoff honoured the server's Retry-After hint (>=1s)
        assert slept[0] >= 1.0

    def test_draining_server_answers_503(self):
        srv = ReproServer(port=0, workers=1, capacity=4,
                          handler=lambda kind, params: {})
        srv.start()
        try:
            assert srv.queue.drain(timeout=5.0)  # queue only; HTTP stays up
            request = urllib.request.Request(
                srv.url + "/v1/evaluate", data=b"{}", method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "5"
        finally:
            srv.drain(timeout=5.0)


class TestJobLifecycleOverHttp:
    def test_job_timeout_reported(self):
        srv = ReproServer(
            port=0, workers=1, capacity=4, job_timeout=0.05,
            handler=lambda kind, params: time.sleep(0.2) or {"late": True})
        srv.start()
        try:
            client = ServeClient(srv.url)
            submitted = client.submit("evaluate", {})
            job = client.wait(submitted["job_id"], timeout=10.0)
            assert job["state"] == "timeout"
            assert job["result"] is None
            with pytest.raises(JobFailed):
                client.run("evaluate", {}, timeout=10.0)
        finally:
            srv.drain(timeout=10.0)

    def test_cancel_queued_job_over_http(self, gated_server):
        srv, gate = gated_server
        client = ServeClient(srv.url, retries=0)
        client.submit("evaluate", {})
        deadline = time.monotonic() + 5
        while srv.queue.stats()["running"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        queued = client.submit("evaluate", {})
        cancelled = client.cancel(queued["job_id"])
        assert cancelled["cancelled"] is True
        assert client.job(queued["job_id"])["state"] == "cancelled"
        # cancelling a finished job is refused, not an error
        gate.set()
        client.wait(queued["job_id"], timeout=5.0)
        assert client.cancel(queued["job_id"])["cancelled"] is False


class TestGracefulDrain:
    def test_drain_is_idempotent(self):
        srv = ReproServer(port=0, workers=1, capacity=4,
                          handler=lambda kind, params: {})
        srv.start()
        assert srv.drain(timeout=5.0) is True
        assert srv.drain(timeout=5.0) is True
        assert srv.health_payload()["status"] == "draining"

    @pytest.mark.slow
    def test_sigterm_drains_in_flight_jobs(self, tmp_path):
        """`repro serve` under SIGTERM: finish the in-flight job, log
        final metrics, exit 0."""
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_ARTIFACT_STORE=str(tmp_path / "store"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--drain-timeout", "120"],
            cwd=tmp_path, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on http://")
            url = banner.split()[2]
            client = ServeClient(url, timeout=30.0)
            submitted = client.submit(
                "evaluate", {"benchmark": BENCHMARK,
                             "case": "hyperblock"})
            assert submitted["state"] == "queued"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=180)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 0, stderr
        assert "serve: drained" in stderr
        metrics_line = next(line for line in stderr.splitlines()
                            if line.startswith("serve: final metrics "))
        final = json.loads(metrics_line[len("serve: final metrics "):])
        # the job submitted just before SIGTERM still ran to completion
        assert final["done"] == 1
        assert final["depth"] == 0 and final["running"] == 0

    @pytest.mark.slow
    def test_sigterm_drains_mid_campaign_generation(self, tmp_path):
        """SIGTERM while an autopilot campaign is evolving: the
        in-flight generation finishes and checkpoints, queued campaign
        steps are shed, interactive jobs complete, and the daemon
        exits 0 with the campaign parked resumably on disk."""
        from repro.gp.parse import unparse
        from repro.metaopt.baselines import BASELINE_TREES
        from repro.serve.registry import ArtifactRegistry

        registry = ArtifactRegistry(tmp_path / "store")
        baseline_expr = unparse(BASELINE_TREES["hyperblock"]())
        bad = build_artifact(
            case="hyperblock",
            expression=f"(sub 0.0000 {baseline_expr})",
            machine=DEFAULT_EPIC,
            training_config={"mode": "manual"}, metrics={},
            created_at=1.0)
        registry.save(bad)
        registry.set_channel("hyperblock", DEFAULT_EPIC.name, "stable",
                             bad.artifact_id)
        config_path = tmp_path / "autopilot.json"
        config_path.write_text(json.dumps({
            "sample_rate": 1.0, "window_size": 8, "window_min": 3,
            "threshold": 0.999, "canary_fraction": 1.0,
            "min_pairs": 3, "max_pairs": 8, "alpha": 0.125,
            "population": 8, "generations": 12, "gp_seed": 11,
        }))
        state_dir = tmp_path / "autopilot"
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_ARTIFACT_STORE=str(tmp_path / "store"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--drain-timeout", "120",
             "--autopilot", str(state_dir),
             "--autopilot-config", str(config_path)],
            cwd=tmp_path, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on http://")
            url = banner.split()[2]
            client = ServeClient(url, timeout=60.0)
            # trip the monitor: three losing benchmarks at rate 1.0
            for bench in ("diamond-join", "023.eqntott", "codrle4"):
                client.evaluate(bench, case="hyperblock",
                                channel="stable", timeout=120.0)
            campaigns = wait_until(
                lambda: client.autopilot_status()["campaigns"] or None,
                timeout=60.0)
            name = campaigns[0]["name"]
            checkpoint = state_dir / "campaigns" / name / "checkpoint.pkl"
            wait_until(checkpoint.exists, timeout=60.0)
            assert client.autopilot_status()["campaigns"][0][
                "phase"] == "evolving"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=180)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 0, stderr
        assert "serve: drained" in stderr
        metrics_line = next(line for line in stderr.splitlines()
                            if line.startswith("serve: final metrics "))
        final = json.loads(metrics_line[len("serve: final metrics "):])
        assert final["depth"] == 0 and final["running"] == 0
        assert final["background_depth"] == 0
        # every interactive evaluate completed; only campaign steps
        # were shed by the drain
        assert final["done"] >= 3
        # the campaign is parked resumably: checkpoint on disk, record
        # still in its evolving phase
        assert checkpoint.exists()
        record = json.loads(
            (state_dir / "campaigns" / name / "campaign.json")
            .read_text())
        assert record["phase"] == "evolving"
        assert record["parent_id"] == bad.artifact_id


def wait_until(predicate, timeout=30.0, poll=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError("timed out")
