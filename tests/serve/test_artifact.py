"""Artifact document + registry: content addressing, round-trip,
verification, and the compile-under-artifact hook."""

import json

import pytest

from repro.gp.parse import unparse
from repro.machine.descr import DEFAULT_EPIC, ITANIUM_MACHINE
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactError,
    HeuristicArtifact,
    build_artifact,
)
from repro.serve.registry import ArtifactRegistry, registry_from_env


def hyperblock_artifact(**overrides):
    defaults = dict(
        case="hyperblock",
        expression=unparse(BASELINE_TREES["hyperblock"]()),
        machine=DEFAULT_EPIC,
        training_config={"mode": "specialize", "benchmark": "codrle4"},
        metrics={"train_speedup": 1.0},
        created_at=1_700_000_000.0,
    )
    defaults.update(overrides)
    return build_artifact(**defaults)


class TestArtifactDocument:
    def test_round_trip(self):
        artifact = hyperblock_artifact()
        clone = HeuristicArtifact.from_json_dict(artifact.to_json_dict())
        assert clone == artifact
        assert clone.artifact_id == artifact.artifact_id

    def test_content_addressed(self):
        one = hyperblock_artifact()
        two = hyperblock_artifact(metrics={"train_speedup": 2.0})
        assert one.artifact_id != two.artifact_id
        assert hyperblock_artifact().artifact_id == one.artifact_id

    def test_schema_stamp(self):
        assert hyperblock_artifact().schema == ARTIFACT_SCHEMA

    def test_tampered_id_rejected(self):
        data = hyperblock_artifact().to_json_dict()
        data["expression"] = "(add blk_ops blk_ops)"
        with pytest.raises(ArtifactError, match="does not match"):
            HeuristicArtifact.from_json_dict(data)

    def test_unknown_field_rejected(self):
        data = hyperblock_artifact().to_json_dict()
        data["surprise"] = 1
        with pytest.raises(ArtifactError, match="unknown artifact"):
            HeuristicArtifact.from_json_dict(data)

    def test_unknown_case_rejected(self):
        with pytest.raises(ArtifactError, match="unknown case"):
            build_artifact(case="linker", expression="(add 1 1)",
                           machine=DEFAULT_EPIC)

    def test_expression_canonicalized(self):
        artifact = hyperblock_artifact()
        spaced = build_artifact(
            case="hyperblock",
            expression="  " + artifact.expression.replace("(", "( "),
            machine=DEFAULT_EPIC,
            training_config=artifact.training_config,
            metrics=artifact.metrics,
            created_at=artifact.created_at,
        )
        assert spaced.expression == artifact.expression
        assert spaced.artifact_id == artifact.artifact_id


class TestArtifactVerify:
    def test_valid_artifact_verifies(self):
        assert hyperblock_artifact().verify() == []

    def test_bad_expression_flagged(self):
        artifact = hyperblock_artifact()
        broken = HeuristicArtifact(
            **{**artifact.to_json_dict(include_id=False),
               "expression": "(not_a_primitive 1)"})
        problems = broken.verify()
        assert any("parse" in p for p in problems)

    def test_wrong_type_flagged(self):
        # hyperblock wants a real-valued priority; a comparison is BOOL
        artifact = hyperblock_artifact()
        wrong = HeuristicArtifact(
            **{**artifact.to_json_dict(include_id=False),
               "expression": "(lt 1.0000 2.0000)"})
        problems = wrong.verify()
        assert any("needs" in p for p in problems)

    def test_stale_pipeline_fingerprint_flagged(self):
        artifact = hyperblock_artifact()
        stale = HeuristicArtifact(
            **{**artifact.to_json_dict(include_id=False),
               "pipeline_fingerprint": "0" * 16})
        problems = stale.verify()
        assert any("stale pipeline" in p for p in problems)

    def test_future_schema_flagged(self):
        artifact = hyperblock_artifact()
        future = HeuristicArtifact(
            **{**artifact.to_json_dict(include_id=False),
               "schema": ARTIFACT_SCHEMA + 1})
        assert any("schema" in p for p in future.verify())


class TestRegistry:
    def test_save_load_list(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "store")
        artifact = hyperblock_artifact()
        artifact_id = registry.save(artifact)
        assert artifact_id == artifact.artifact_id
        assert artifact_id in registry
        assert registry.load(artifact_id) == artifact
        rows = registry.list()
        assert len(rows) == 1 == len(registry)
        assert rows[0]["artifact_id"] == artifact_id
        assert rows[0]["case"] == "hyperblock"

    def test_save_idempotent(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        artifact = hyperblock_artifact()
        assert registry.save(artifact) == registry.save(artifact)
        assert len(registry) == 1

    def test_prefix_resolution(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        artifact = hyperblock_artifact()
        registry.save(artifact)
        assert registry.load(artifact.artifact_id[:8]) == artifact

    def test_ambiguous_prefix_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        # 17 distinct ids must collide on the first hex character
        # (pigeonhole over 16 buckets), making that prefix ambiguous.
        by_first_char = {}
        for n in range(17):
            saved = registry.save(
                hyperblock_artifact(metrics={"round": n}))
            by_first_char.setdefault(saved[0], []).append(saved)
        shared = next(ids for ids in by_first_char.values()
                      if len(ids) > 1)
        with pytest.raises(ArtifactError, match="ambiguous"):
            registry.load(shared[0][0])

    def test_empty_reference_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactError, match="empty artifact"):
            registry.load("")

    def test_missing_artifact_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactError, match="no artifact"):
            registry.load("deadbeef")

    def test_corrupt_document_flagged_by_verify(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        artifact_id = registry.save(hyperblock_artifact())
        path = registry.path_for(artifact_id)
        data = json.loads(path.read_text())
        data["metrics"] = {"train_speedup": 99.0}  # tamper, keep id
        path.write_text(json.dumps(data))
        problems = registry.verify(artifact_id)
        assert problems and "does not match" in problems[0]

    def test_registry_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_STORE", str(tmp_path / "env"))
        assert registry_from_env().root == tmp_path / "env"
        assert registry_from_env(str(tmp_path / "flag")).root == \
            tmp_path / "flag"


class TestCompileUnderArtifact:
    def test_install_matches_direct_simulation(self):
        """CompilerOptions(heuristic_artifact=...) must produce the
        same binary as installing the expression by hand."""
        artifact = hyperblock_artifact()
        harness = EvaluationHarness(case_study("hyperblock"))
        direct = harness.simulate(artifact.tree(), "codrle4", "train")

        from dataclasses import replace

        from repro.machine.sim import Simulator
        from repro.passes.pipeline import compile_backend
        from repro.suite.registry import get as get_benchmark

        prep = harness.prepared("codrle4")
        options = replace(harness.case.options,
                          heuristic_artifact=artifact)
        scheduled, _ = compile_backend(prep, options)
        simulator = Simulator(scheduled, harness.case.machine)
        bench = get_benchmark("codrle4")
        for name, values in bench.inputs("train").items():
            simulator.set_global(name, values)
        assert simulator.run().cycles == direct.cycles

    def test_install_respects_case(self):
        """A prefetch artifact must land in prefetch_priority, not the
        hyperblock hook."""
        from repro.passes.pipeline import CompilerOptions

        artifact = build_artifact(
            case="prefetch",
            expression=unparse(BASELINE_TREES["prefetch"]()),
            machine=ITANIUM_MACHINE,
            created_at=0.0,
        )
        options = CompilerOptions(machine=ITANIUM_MACHINE, prefetch=True,
                                  heuristic_artifact=artifact)
        installed = artifact.install(options)
        assert installed.heuristic_artifact is None
        assert installed.prefetch_priority is not options.prefetch_priority
        assert installed.hyperblock_priority is options.hyperblock_priority
