"""The fleet-facing HTTP surface: ``GET /v1/capabilities`` and the
streaming ``POST /v1/evaluate-batch`` endpoint, plus the uniform
``{"schema": 1, "ok": false, "error": ...}`` error shape.

Tests speak raw ``http.client`` where streaming details matter
(NDJSON chunking, in-band fatal records); the higher-level client
behavior lives in ``tests/fleet/``.
"""

import http.client
import json

import pytest

from repro.gp.parse import unparse
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.fitness_cache import pipeline_fingerprint
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import API_SCHEMA, ENDPOINTS, ReproServer

BENCHMARK = "codrle4"


@pytest.fixture(scope="module")
def server():
    srv = ReproServer(port=0, workers=1, capacity=4)
    srv.start()
    yield srv
    srv.drain(timeout=30.0)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url, timeout=30.0)


def batch_payload(items=None):
    tree = unparse(BASELINE_TREES["hyperblock"]())
    if items is None:
        items = [{"index": 0, "tree": tree, "benchmark": BENCHMARK}]
    return {"schema": 1, "case": "hyperblock", "dataset": "train",
            "settings": {}, "items": items}


def post_batch(server, payload, path="/v1/evaluate-batch"):
    """Raw POST; returns (status, headers, parsed body).

    A 200 body is the list of NDJSON records, anything else the JSON
    error document.
    """
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=60)
    try:
        conn.request("POST", path, body=json.dumps(payload).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        if response.status != 200:
            return response.status, response.headers, json.loads(raw)
        lines = [json.loads(line) for line in raw.decode().splitlines()]
        return 200, response.headers, lines
    finally:
        conn.close()


class TestCapabilities:
    def test_shape(self, client):
        caps = client.capabilities()
        assert caps["schema"] == API_SCHEMA
        assert caps["ok"] is True
        assert caps["server"] == "repro-serve"
        assert caps["endpoints"] == list(ENDPOINTS)
        assert "POST /v1/evaluate-batch" in caps["endpoints"]
        assert caps["pipeline_fingerprint"] == pipeline_fingerprint()
        assert caps["batch_concurrency"] == 4

    def test_wrong_method_is_405_with_allow(self, server):
        status, headers, body = post_batch(server, {},
                                           path="/v1/capabilities")
        assert status == 405
        assert headers["Allow"] == "GET"
        assert body["schema"] == API_SCHEMA
        assert body["ok"] is False
        assert "error" in body


class TestErrorShape:
    def test_404_carries_schema_and_ok(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/no-such-route")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["schema"] == API_SCHEMA
        assert excinfo.value.payload["ok"] is False

    def test_bad_batch_is_400(self, server):
        status, _, body = post_batch(server, {"schema": 99})
        assert status == 400
        assert body["ok"] is False
        assert "schema" in body["error"]

    def test_unknown_case_is_400(self, server):
        payload = batch_payload()
        payload["case"] = "mystery"
        status, _, body = post_batch(server, payload)
        assert status == 400
        assert "mystery" in body["error"]


class TestEvaluateBatch:
    def test_streams_values_matching_direct_harness(self, server):
        tree = BASELINE_TREES["hyperblock"]()
        harness = EvaluationHarness(case_study("hyperblock"))
        expected = harness.speedup(tree, BENCHMARK, "train")
        payload = batch_payload([
            {"index": 7, "tree": unparse(tree), "benchmark": BENCHMARK},
            {"index": 3, "tree": unparse(tree), "benchmark": BENCHMARK},
        ])
        status, headers, lines = post_batch(server, payload)
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert lines[-1] == {"done": True, "count": 2}
        records = {line["index"]: line for line in lines[:-1]}
        assert set(records) == {7, 3}
        for record in records.values():
            assert record["ok"] is True
            assert record["value"] == expected

    def test_bad_item_fails_alone(self, server):
        tree = unparse(BASELINE_TREES["hyperblock"]())
        payload = batch_payload([
            {"index": 0, "tree": "(nonsense", "benchmark": BENCHMARK},
            {"index": 1, "tree": tree, "benchmark": BENCHMARK},
        ])
        status, _, lines = post_batch(server, payload)
        assert status == 200
        by_index = {line["index"]: line for line in lines[:-1]}
        assert by_index[0]["ok"] is False
        assert "error" in by_index[0]
        assert by_index[1]["ok"] is True

    def test_fingerprint_mismatch_is_in_band_fatal(self, server):
        payload = batch_payload()
        payload["fingerprint"] = {"pipeline": "bogus"}
        status, _, lines = post_batch(server, payload)
        assert status == 200
        assert lines[0]["ok"] is False
        assert lines[0]["fatal"] is True
        assert "fingerprint" in lines[0]["error"]
        assert lines[-1] == {"done": True, "count": 0}

    def test_duplicate_indices_rejected(self, server):
        tree = unparse(BASELINE_TREES["hyperblock"]())
        payload = batch_payload([
            {"index": 0, "tree": tree, "benchmark": BENCHMARK},
            {"index": 0, "tree": tree, "benchmark": BENCHMARK},
        ])
        status, _, body = post_batch(server, payload)
        assert status == 400
        assert "duplicate" in body["error"]


class TestBackpressure:
    def test_exhausted_lanes_shed_with_retry_after(self):
        srv = ReproServer(port=0, workers=1, capacity=4,
                          batch_concurrency=1)
        srv.start()
        assert srv._batch_lanes.acquire(blocking=False)  # hog the lane
        try:
            status, headers, body = post_batch(srv, batch_payload())
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert body["ok"] is False
        finally:
            srv._batch_lanes.release()
            srv.drain(timeout=10.0)

    def test_draining_server_says_503(self):
        srv = ReproServer(port=0, workers=1, capacity=4)
        srv.start()
        try:
            srv._draining.set()
            status, headers, body = post_batch(srv, batch_payload())
            assert status == 503
            assert headers["Retry-After"] == "5"
            assert body["ok"] is False
        finally:
            srv._draining.clear()
            srv.drain(timeout=10.0)
