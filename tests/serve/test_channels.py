"""Artifact lineage and deployment channels: versioned tracks, atomic
stable/canary pointer moves, ancestry chains, filtered listings, and
the HTTP channel-pointer API."""

import json

import pytest

from repro.gp.parse import unparse
from repro.machine.descr import DEFAULT_EPIC
from repro.metaopt.baselines import BASELINE_TREES
from repro.serve.artifact import ArtifactError, build_artifact
from repro.serve.client import ServeClient, ServeError
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import ReproServer

CASE = "hyperblock"
MACHINE = DEFAULT_EPIC.name


def make_artifact(expression=None, parent_id=None, created_at=1.0):
    return build_artifact(
        case=CASE,
        expression=expression or unparse(BASELINE_TREES[CASE]()),
        machine=DEFAULT_EPIC,
        training_config={"mode": "manual"},
        metrics={},
        created_at=created_at,
        parent_id=parent_id,
    )


@pytest.fixture()
def registry(tmp_path):
    return ArtifactRegistry(tmp_path / "store")


@pytest.fixture()
def family(registry):
    """grandparent -> parent -> child, all saved."""
    grandparent = make_artifact(created_at=1.0)
    parent = make_artifact(created_at=2.0,
                           parent_id=grandparent.artifact_id)
    child = make_artifact(created_at=3.0, parent_id=parent.artifact_id)
    for artifact in (grandparent, parent, child):
        registry.save(artifact)
    return grandparent, parent, child


class TestParentId:
    def test_parent_changes_content_address(self):
        base = make_artifact()
        derived = make_artifact(parent_id="f" * 64)
        assert base.artifact_id != derived.artifact_id

    def test_no_parent_serializes_without_key(self):
        # pre-lineage artifacts keep their digests: the field is only
        # part of the canonical form when set
        assert "parent_id" not in make_artifact().to_json_dict()
        assert make_artifact(parent_id="f" * 64).to_json_dict()[
            "parent_id"] == "f" * 64

    def test_malformed_parent_rejected(self):
        artifact = make_artifact(parent_id="not-a-digest")
        assert any("parent_id" in problem
                   for problem in artifact.verify())


class TestChannels:
    def test_versions_are_monotonic_and_idempotent(self, registry, family):
        _, parent, child = family
        assert registry.register_version(CASE, MACHINE,
                                         parent.artifact_id) == 1
        assert registry.register_version(CASE, MACHINE,
                                         child.artifact_id) == 2
        # re-registering is a no-op
        assert registry.register_version(CASE, MACHINE,
                                         parent.artifact_id) == 1

    def test_set_channel_returns_move(self, registry, family):
        _, parent, _ = family
        move = registry.set_channel(CASE, MACHINE, "stable",
                                    parent.artifact_id)
        assert move == {"channel": "stable",
                        "artifact_id": parent.artifact_id,
                        "version": 1, "previous": None}
        assert registry.get_channel(CASE, MACHINE,
                                    "stable") == parent.artifact_id

    def test_set_channel_rejects_wrong_track(self, registry, family):
        _, parent, _ = family
        with pytest.raises(ArtifactError, match="track"):
            registry.set_channel(CASE, "other-machine", "stable",
                                 parent.artifact_id)

    def test_unknown_channel_rejected(self, registry, family):
        with pytest.raises(ArtifactError, match="unknown channel"):
            registry.set_channel(CASE, MACHINE, "beta",
                                 family[1].artifact_id)

    def test_promote_swaps_pointers_atomically(self, registry, family):
        _, parent, child = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", child.artifact_id)
        move = registry.promote(CASE, MACHINE)
        assert move["stable"] == child.artifact_id
        assert move["previous_stable"] == parent.artifact_id
        assert registry.get_channel(CASE, MACHINE, "canary") is None

    def test_promote_without_canary_refused(self, registry, family):
        with pytest.raises(ArtifactError, match="no canary"):
            registry.promote(CASE, MACHINE)

    def test_rollback_keeps_stable(self, registry, family):
        _, parent, child = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", child.artifact_id)
        move = registry.rollback(CASE, MACHINE)
        assert move["rolled_back"] == child.artifact_id
        assert registry.get_channel(CASE, MACHINE,
                                    "stable") == parent.artifact_id
        assert registry.get_channel(CASE, MACHINE, "canary") is None

    def test_pointer_moves_are_logged_without_timestamps(self, registry,
                                                         family):
        _, parent, child = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", child.artifact_id)
        registry.promote(CASE, MACHINE)
        track = registry.channels()[f"{CASE}/{MACHINE}"]
        actions = [entry["action"] for entry in track["log"]]
        assert actions == ["version", "set", "version", "set", "promote"]
        assert [entry["seq"] for entry in track["log"]] == [1, 2, 3, 4, 5]
        assert all("time" not in entry and "timestamp" not in entry
                   for entry in track["log"])

    def test_pointers_survive_reopening_the_store(self, registry, family,
                                                  tmp_path):
        _, parent, _ = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        reopened = ArtifactRegistry(tmp_path / "store")
        assert reopened.get_channel(CASE, MACHINE,
                                    "stable") == parent.artifact_id


class TestLineage:
    def test_chain_walks_parents(self, registry, family):
        grandparent, parent, child = family
        chain = registry.lineage(child.artifact_id)
        assert [row["artifact_id"] for row in chain] == [
            child.artifact_id, parent.artifact_id,
            grandparent.artifact_id]
        assert chain[-1]["parent_id"] is None

    def test_missing_parent_reported(self, registry):
        orphan = make_artifact(parent_id="e" * 64)
        registry.save(orphan)
        chain = registry.lineage(orphan.artifact_id)
        assert chain[1] == {"artifact_id": "e" * 64, "error": "missing"}

    def test_prefix_resolution(self, registry, family):
        _, _, child = family
        chain = registry.lineage(child.artifact_id[:10])
        assert chain[0]["artifact_id"] == child.artifact_id


class TestFilteredList:
    def test_sorted_by_version(self, registry, family):
        grandparent, parent, child = family
        registry.register_version(CASE, MACHINE, child.artifact_id)
        registry.register_version(CASE, MACHINE, parent.artifact_id)
        rows = registry.list()
        # versioned artifacts first (1, 2), unversioned last
        assert [row["artifact_id"] for row in rows] == [
            child.artifact_id, parent.artifact_id,
            grandparent.artifact_id]
        assert [row["version"] for row in rows] == [1, 2, None]

    def test_channel_filter(self, registry, family):
        _, parent, child = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", child.artifact_id)
        stable_rows = registry.list(channel="stable")
        assert [row["artifact_id"] for row in stable_rows] == [
            parent.artifact_id]
        assert stable_rows[0]["channels"] == ["stable"]
        assert registry.list(channel="canary")[0][
            "artifact_id"] == child.artifact_id

    def test_case_and_machine_filters(self, registry, family):
        assert len(registry.list(case=CASE)) == 3
        assert registry.list(case="nonesuch") == []
        assert len(registry.list(machine=MACHINE)) == 3
        assert registry.list(machine="nonesuch") == []


class TestChannelHttpApi:
    @pytest.fixture()
    def server(self, registry, family):
        srv = ReproServer(port=0, workers=1, capacity=8,
                          registry=registry,
                          handler=lambda kind, params: {})
        srv.start()
        yield srv
        srv.drain(timeout=10.0)

    @pytest.fixture()
    def client(self, server):
        return ServeClient(server.url, timeout=10.0)

    def test_full_pointer_lifecycle_over_http(self, client, family):
        _, parent, child = family
        move = client.set_channel(CASE, MACHINE, "stable",
                                  parent.artifact_id)
        assert move["ok"] is True and move["version"] == 1
        client.set_channel(CASE, MACHINE, "canary", child.artifact_id)
        track = client.channel_track(CASE, MACHINE)
        assert track["stable"] == parent.artifact_id
        assert track["canary"] == child.artifact_id
        promoted = client.promote(CASE, MACHINE)
        assert promoted["stable"] == child.artifact_id
        assert client.channel_track(CASE, MACHINE)["canary"] is None
        assert f"{CASE}/{MACHINE}" in client.channels()

    def test_promote_without_canary_409(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.promote(CASE, MACHINE)
        assert excinfo.value.status == 409

    def test_unknown_track_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.channel_track("nonesuch", "nowhere")
        assert excinfo.value.status == 404

    def test_lineage_over_http(self, client, family):
        grandparent, parent, child = family
        chain = client.lineage(child.artifact_id[:10])
        assert [row["artifact_id"] for row in chain] == [
            child.artifact_id, parent.artifact_id,
            grandparent.artifact_id]

    def test_autopilot_status_disabled(self, client):
        status = client.autopilot_status()
        assert status == {"schema": 1, "ok": True, "enabled": False}


class TestChannelsCli:
    def test_list_filters_and_lineage(self, registry, family, tmp_path,
                                      capsys):
        from repro.cli import main

        _, parent, child = family
        registry.set_channel(CASE, MACHINE, "stable", parent.artifact_id)
        store = str(registry.root)
        assert main(["artifacts", "list", "--store", store,
                     "--channel", "stable", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [row["artifact_id"] for row in listed["artifacts"]] == [
            parent.artifact_id]
        assert main(["artifacts", "lineage", child.artifact_id[:10],
                     "--store", store, "--json"]) == 0
        chain = json.loads(capsys.readouterr().out)["lineage"]
        assert chain[1]["artifact_id"] == parent.artifact_id
        assert main(["artifacts", "channels", "--store", store]) == 0
        assert f"{CASE}/{MACHINE}" in capsys.readouterr().out
