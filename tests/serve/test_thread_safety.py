"""Thread-safety of the process-wide caches the daemon's workers share.

The serving daemon runs compiles and simulations on many threads at
once; the module-level simulator codegen cache and the
:class:`FitnessCache` memory layer are the two pieces of shared
mutable state.  These tests hammer both from 8 threads and assert the
counters stay consistent and every thread observes correct results —
under a racy implementation they fail with KeyError/RuntimeError
(dict mutation during iteration) or silently lost counts.
"""

import threading

from repro.machine.sim import (
    Simulator,
    clear_codegen_cache,
    codegen_cache_stats,
)
from repro.metaopt.fitness_cache import FitnessCache
from repro.suite.registry import get as get_benchmark

THREADS = 8
ROUNDS = 12


def run_threads(target):
    errors = []

    def wrapped(slot):
        try:
            target(slot)
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(slot,))
               for slot in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert errors == [], errors


class TestCodegenCacheUnderThreads:
    def test_concurrent_simulations_agree_and_count(self):
        """8 threads simulate the same benchmark: every thread gets the
        same cycle count and hits + misses == lookups."""
        from repro.compiler import compile_program

        bench = get_benchmark("codrle4")
        program = compile_program(bench.source, name=bench.name)
        inputs = bench.inputs("train")
        clear_codegen_cache()

        cycles = [None] * THREADS
        barrier = threading.Barrier(THREADS)

        def worker(slot):
            barrier.wait()  # maximize overlap on the cold cache
            seen = set()
            for _ in range(ROUNDS):
                simulator = Simulator(program.scheduled,
                                      program.options.machine)
                for name, values in inputs.items():
                    simulator.set_global(name, values)
                seen.add(simulator.run().cycles)
            assert len(seen) == 1
            cycles[slot] = seen.pop()

        run_threads(worker)
        assert len(set(cycles)) == 1

        stats = codegen_cache_stats()
        functions = len(program.scheduled.functions)
        lookups = THREADS * ROUNDS * functions
        # No lost updates: every lookup is accounted a hit or a miss.
        assert stats["hits"] + stats["misses"] == lookups
        # The racy window allows benign duplicate translation, but
        # never more misses than one per thread per function.
        assert functions <= stats["misses"] <= THREADS * functions
        assert stats["entries"] >= functions

    def test_stats_and_clear_race_free(self):
        """Readers/clearers interleaving with simulations must never
        corrupt the cache dict."""
        from repro.compiler import compile_program

        bench = get_benchmark("codrle4")
        program = compile_program(bench.source, name=bench.name)
        inputs = bench.inputs("train")
        stop = threading.Event()

        def simulate(slot):
            while not stop.is_set():
                simulator = Simulator(program.scheduled,
                                      program.options.machine)
                for name, values in inputs.items():
                    simulator.set_global(name, values)
                simulator.run()

        def churn(slot):
            for _ in range(50):
                codegen_cache_stats()
                clear_codegen_cache()
            stop.set()

        def worker(slot):
            (churn if slot == 0 else simulate)(slot)

        run_threads(worker)
        stats = codegen_cache_stats()
        assert stats["hits"] >= 0 and stats["misses"] >= 0


class TestFitnessCacheUnderThreads:
    def _result(self, n):
        from repro.machine.sim import SimResult

        return SimResult(cycles=n, return_value=None, outputs=[],
                         dynamic_ops=n)

    def test_concurrent_put_get_consistent_counters(self, tmp_path):
        cache = FitnessCache(tmp_path / "cache")
        barrier = threading.Barrier(THREADS)

        def worker(slot):
            barrier.wait()
            for n in range(ROUNDS):
                key = f"{'k' * 62}{slot}{n}"  # 64-char unique keys
                assert cache.get(key) is None  # cold
                cache.put(key, self._result(n))
                stored = cache.get(key)
                assert stored is not None and stored.cycles == n
                cache.get(f"{'m' * 62}{slot}{n}")  # guaranteed miss

        run_threads(worker)
        stats = cache.stats()
        writes = THREADS * ROUNDS
        assert stats["stores"] == writes
        assert stats["hits"] == writes
        assert stats["misses"] == 2 * writes
        assert stats["in_memory"] == writes
        assert len(cache) == writes

    def test_shared_hot_key_all_threads_hit(self, tmp_path):
        cache = FitnessCache(tmp_path / "cache")
        key = "a" * 64
        cache.put(key, self._result(42))
        barrier = threading.Barrier(THREADS)

        def worker(slot):
            barrier.wait()
            for _ in range(ROUNDS * 10):
                stored = cache.get(key)
                assert stored is not None and stored.cycles == 42

        run_threads(worker)
        assert cache.stats()["hits"] == THREADS * ROUNDS * 10

    def test_disk_layer_atomic_under_writers(self, tmp_path):
        """All 8 threads write the same key concurrently; the on-disk
        document is never torn (a fresh cache can always read it)."""
        cache = FitnessCache(tmp_path / "cache")
        key = "b" * 64
        barrier = threading.Barrier(THREADS)

        def worker(slot):
            barrier.wait()
            for n in range(ROUNDS):
                cache.put(key, self._result(slot * 1000 + n))

        run_threads(worker)
        fresh = FitnessCache(tmp_path / "cache")
        stored = fresh.get(key)
        assert stored is not None  # readable, i.e. not torn
        assert fresh.stats()["disk_hits"] == 1

    def test_memory_only_cache_safe(self):
        cache = FitnessCache(None)
        barrier = threading.Barrier(THREADS)

        def worker(slot):
            barrier.wait()
            for n in range(ROUNDS):
                cache.put(f"{'c' * 62}{slot}{n}", self._result(n))
                cache.clear_memory() if slot == 0 and n % 3 == 0 else None
                len(cache)
                cache.stats()

        run_threads(worker)
        assert cache.stats()["stores"] == THREADS * ROUNDS
