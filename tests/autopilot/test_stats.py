"""The exact sign test and the canary verdict policy."""

import pytest

from repro.autopilot.stats import paired_verdict, sign_test_p_value


class TestSignTest:
    def test_exact_small_cases(self):
        assert sign_test_p_value(0, 0) == 1.0
        assert sign_test_p_value(1, 1) == 0.5
        assert sign_test_p_value(2, 2) == 0.25
        assert sign_test_p_value(3, 3) == 0.125
        # P(X >= 2 | n=3) = (3 + 1) / 8
        assert sign_test_p_value(2, 3) == 0.5
        assert sign_test_p_value(0, 3) == 1.0

    def test_symmetry(self):
        # P(X >= w) + P(X >= n - w + 1) == 1 for the fair coin
        for trials in range(1, 12):
            for wins in range(trials + 1):
                total = (sign_test_p_value(wins, trials)
                         + sign_test_p_value(trials - wins + 1, trials)
                         if wins >= 1 else None)
                if total is not None:
                    assert total == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sign_test_p_value(3, 2)
        with pytest.raises(ValueError):
            sign_test_p_value(-1, 2)


class TestPairedVerdict:
    def test_unanimous_wins_promote(self):
        pairs = [(100, 90), (200, 180), (300, 299)]
        verdict = paired_verdict(pairs, min_pairs=3, max_pairs=12,
                                 alpha=0.125)
        assert verdict["decision"] == "promote"
        assert verdict["wins"] == 3 and verdict["losses"] == 0
        assert verdict["p_value"] == 0.125

    def test_unanimous_losses_rollback(self):
        pairs = [(90, 100), (180, 200), (299, 300)]
        verdict = paired_verdict(pairs, min_pairs=3, max_pairs=12,
                                 alpha=0.125)
        assert verdict["decision"] == "rollback"

    def test_below_min_pairs_continues(self):
        verdict = paired_verdict([(100, 90), (200, 180)], min_pairs=3,
                                 max_pairs=12, alpha=0.125)
        assert verdict["decision"] == "continue"

    def test_mixed_evidence_continues(self):
        pairs = [(100, 90), (90, 100), (200, 180), (180, 200)]
        verdict = paired_verdict(pairs, min_pairs=3, max_pairs=12,
                                 alpha=0.125)
        assert verdict["decision"] == "continue"

    def test_inconclusive_at_max_pairs_fails_safe(self):
        pairs = [(100, 90), (90, 100)] * 6  # 12 pairs, dead even
        verdict = paired_verdict(pairs, min_pairs=3, max_pairs=12,
                                 alpha=0.125)
        assert verdict["decision"] == "rollback"

    def test_ties_carry_no_information(self):
        # deterministic simulation produces exact ties constantly;
        # they must not dilute the test
        pairs = [(100, 100)] * 8 + [(100, 90), (200, 180), (300, 299)]
        verdict = paired_verdict(pairs, min_pairs=3, max_pairs=20,
                                 alpha=0.125)
        assert verdict["ties"] == 8
        assert verdict["decision"] == "promote"
