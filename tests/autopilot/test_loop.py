"""The autopilot loop end to end, in process.

A real :class:`ReproServer` with the autopilot enabled serves a
deliberately *bad* stable artifact (the negated baseline priority —
slower than the baseline heuristic on several benchmarks).  Channel
traffic trips the quality monitor, a low-priority campaign evolves a
replacement seeded from the incumbent, the champion canaries on a
hash-routed slice, and the sign test promotes it — with the whole
decision trail byte-identical across a daemon kill+restart.
"""

import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.autopilot import Autopilot, AutopilotConfig
from repro.autopilot.campaign import Campaign
from repro.gp.parse import unparse
from repro.machine.descr import DEFAULT_EPIC
from repro.metaopt.baselines import BASELINE_TREES
from repro.serve.artifact import build_artifact
from repro.serve.client import ServeClient
from repro.serve.jobs import HarnessPool
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import ReproServer

CASE = "hyperblock"
MACHINE = DEFAULT_EPIC.name

#: Fast benchmarks where the negated baseline loses to the baseline.
TRIP_BENCHES = ("diamond-join", "023.eqntott", "codrle4")
PAIR_BENCHES = ("diamond-join", "023.eqntott", "codrle4", "huff_dec")

BASELINE_EXPR = unparse(BASELINE_TREES[CASE]())
BAD_EXPR = f"(sub 0.0000 {BASELINE_EXPR})"


def make_artifact(expression, created_at=1.0, parent_id=None):
    return build_artifact(
        case=CASE, expression=expression, machine=DEFAULT_EPIC,
        training_config={"mode": "manual"}, metrics={},
        created_at=created_at, parent_id=parent_id)


def autopilot_config(state_dir: Path, **overrides) -> AutopilotConfig:
    defaults = dict(
        state_dir=str(state_dir),
        sample_rate=1.0,
        window_size=8,
        window_min=len(TRIP_BENCHES),
        threshold=0.999,
        canary_fraction=1.0,
        min_pairs=3,
        max_pairs=8,
        alpha=0.125,
        population=8,
        generations=2,
        gp_seed=11,
    )
    defaults.update(overrides)
    return AutopilotConfig(**defaults)


def seeded_registry(root: Path) -> tuple[ArtifactRegistry, str]:
    """A store whose stable pointer is the bad artifact."""
    registry = ArtifactRegistry(root / "store")
    bad = make_artifact(BAD_EXPR)
    registry.save(bad)
    registry.set_channel(CASE, MACHINE, "stable", bad.artifact_id)
    return registry, bad.artifact_id


def wait_for(predicate, timeout=120.0, poll=0.1, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out waiting for {message}")


def campaign_phases(client) -> list[tuple[str, str]]:
    status = client.autopilot_status()
    return [(record["name"], record["phase"])
            for record in status["campaigns"]]


def drive_channel_traffic(client, benches) -> list[dict]:
    return [client.evaluate(bench, case=CASE, channel="stable",
                            timeout=120.0)
            for bench in benches]


def run_loop_to_completion(root: Path, interrupt: bool,
                           generations: int = 2) -> dict:
    """Drive one full degrade→trip→evolve→canary→promote loop; with
    ``interrupt=True`` the daemon is killed (drained) mid-campaign and
    a fresh daemon resumes from the checkpoint."""
    registry, bad_id = seeded_registry(root)
    config = autopilot_config(root / "autopilot",
                              generations=generations)

    def boot():
        server = ReproServer(port=0, workers=2, capacity=32,
                             registry=registry, autopilot_config=config)
        server.start()
        return server, ServeClient(server.url, timeout=120.0)

    server, client = boot()
    phase_at_drain = None
    phases: list[tuple[str, str]] = []
    try:
        drive_channel_traffic(client, TRIP_BENCHES)
        wait_for(lambda: campaign_phases(client),
                 message="campaign to start")
        if interrupt:
            name = campaign_phases(client)[0][0]
            checkpoint = (root / "autopilot" / "campaigns" / name
                          / "checkpoint.pkl")
            wait_for(checkpoint.exists, message="first checkpoint")
            phase_at_drain = campaign_phases(client)[0][1]
            server.drain(timeout=60.0)
            server, client = boot()  # the restarted daemon recovers
        wait_for(lambda: campaign_phases(client)[0][1] == "canary",
                 message="campaign to reach canary")
        for _ in range(4):
            drive_channel_traffic(client, PAIR_BENCHES)
            phases = campaign_phases(client)
            if phases[0][1] in ("promoted", "rolled_back"):
                break
    finally:
        server.drain(timeout=60.0)
    track = registry.channels()[f"{CASE}/{MACHINE}"]
    return {
        "bad_id": bad_id,
        "phases": phases,
        "phase_at_drain": phase_at_drain,
        "track": track,
        "decisions": (root / "autopilot"
                      / "decisions.jsonl").read_bytes(),
        "lineage": registry.lineage(track["stable"]),
    }


@pytest.mark.slow
class TestPromotePath:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        metrics = obs.enable_metrics()
        try:
            result = run_loop_to_completion(
                tmp_path_factory.mktemp("loop"), interrupt=False)
        finally:
            obs.disable_metrics()
        result["obs"] = metrics.snapshot()
        return result

    def test_campaign_promoted(self, outcome):
        assert [phase for _, phase in outcome["phases"]] == ["promoted"]

    def test_champion_is_stable_with_lineage(self, outcome):
        track = outcome["track"]
        assert track["canary"] is None
        assert track["stable"] != outcome["bad_id"]
        chain = outcome["lineage"]
        assert chain[0]["parent_id"] == outcome["bad_id"]
        assert chain[1]["artifact_id"] == outcome["bad_id"]
        # champion is version 2 on the track
        assert track["versions"][track["stable"]] == 2

    def test_decisions_are_schema_stamped_and_ordered(self, outcome):
        records = [json.loads(line) for line
                   in outcome["decisions"].splitlines()]
        assert [r["event"] for r in records] == [
            "campaign_started", "champion_published", "canary_started",
            "promoted"]
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        assert all(r["schema"] == 1 for r in records)
        # deterministic replay: no wall-clock, no job ids
        for record in records:
            assert not {"time", "timestamp", "created_at",
                        "job_id"} & set(record)

    def test_campaign_started_names_the_worst_benchmark(self, outcome):
        started = json.loads(outcome["decisions"].splitlines()[0])
        assert started["benchmark"] == "diamond-join"
        assert started["parent_id"] == outcome["bad_id"]
        assert started["window_mean"] < started["threshold"]

    def test_promotion_was_significant(self, outcome):
        promoted = json.loads(outcome["decisions"].splitlines()[-1])
        assert promoted["wins"] >= 3 and promoted["losses"] == 0
        assert promoted["p_value"] <= 0.125

    def test_autopilot_metrics_flowed(self, outcome):
        counters = outcome["obs"]["counters"]
        assert counters.get("autopilot.samples", 0) >= 3
        assert counters.get("autopilot.triggers") == 1
        assert counters.get("autopilot.steps", 0) >= 2
        assert counters.get("autopilot.promotions") == 1
        # campaign steps ran as background jobs, interactive evaluates
        # as interactive ones
        waits = outcome["obs"]["histograms"]
        assert waits["serve.wait_seconds.background"]["count"] >= 2
        assert waits["serve.wait_seconds.interactive"]["count"] >= 7


@pytest.mark.slow
class TestInteractiveLatencyDuringCampaign:
    def test_interactive_p50_stays_low_while_campaign_runs(self,
                                                           tmp_path):
        """The campaign must never starve interactive traffic: while
        it evolves in the background, interactive evaluate jobs keep a
        low p50 queue wait (asserted from the serve metrics
        histogram)."""
        registry, _ = seeded_registry(tmp_path)
        config = autopilot_config(tmp_path / "autopilot", generations=6)
        metrics = obs.enable_metrics()
        server = ReproServer(port=0, workers=2, capacity=32,
                             registry=registry,
                             autopilot_config=config)
        server.start()
        client = ServeClient(server.url, timeout=120.0)
        try:
            drive_channel_traffic(client, TRIP_BENCHES)
            wait_for(lambda: campaign_phases(client),
                     message="campaign to start")
            # interactive traffic while the campaign is stepping
            for _ in range(3):
                drive_channel_traffic(client, TRIP_BENCHES)
        finally:
            server.drain(timeout=120.0)
            obs.disable_metrics()
        hist = metrics.snapshot()["histograms"][
            "serve.wait_seconds.interactive"]
        total = hist["count"]
        assert total >= 12
        # p50 upper bound: the bucket where the cumulative count
        # crosses half of all observations
        cumulative = 0
        p50_bound = float("inf")
        for edge, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            if cumulative >= total / 2:
                p50_bound = edge
                break
        assert p50_bound <= 0.5, (
            f"interactive p50 wait above {p50_bound}s with a campaign "
            f"running: {hist}")


@pytest.mark.slow
class TestKillRestartByteIdentity:
    def test_interrupted_loop_matches_uninterrupted(self,
                                                    tmp_path_factory):
        """Kill the daemon mid-campaign-generation; the restarted
        daemon resumes from the checkpoint and the *entire* decision
        trail — decisions.jsonl bytes, champion id, channel pointers —
        matches a never-interrupted run of the same traffic."""
        straight = run_loop_to_completion(
            tmp_path_factory.mktemp("straight"), interrupt=False,
            generations=12)
        resumed = run_loop_to_completion(
            tmp_path_factory.mktemp("resumed"), interrupt=True,
            generations=12)
        assert resumed["phase_at_drain"] == "evolving"
        assert resumed["decisions"] == straight["decisions"]
        assert resumed["track"] == straight["track"]
        assert [p for _, p in resumed["phases"]] == ["promoted"]


class TestRollbackPath:
    def test_losing_canary_is_rolled_back(self, tmp_path):
        """A canary that loses the paired sign test is discarded:
        stable pointer untouched, canary cleared, decision logged."""
        registry = ArtifactRegistry(tmp_path / "store")
        good = make_artifact(BASELINE_EXPR, created_at=1.0)
        loser = make_artifact(BAD_EXPR, created_at=2.0,
                              parent_id=good.artifact_id)
        registry.save(good)
        registry.save(loser)
        registry.set_channel(CASE, MACHINE, "stable", good.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", loser.artifact_id)

        config = autopilot_config(tmp_path / "autopilot")
        pool = HarnessPool()
        autopilot = Autopilot(config, registry, pool,
                              submit=lambda *a, **k: None)
        campaign = Campaign(
            name="t-0001", case=CASE, machine=MACHINE,
            benchmark="diamond-join", dataset="train",
            parent_id=good.artifact_id, trigger_seq=1,
            root=autopilot.campaigns_dir / "t-0001", phase="canary",
            champion_id=loser.artifact_id)
        campaign.save()
        autopilot.campaigns[campaign.name] = campaign

        harness = pool.get(CASE)
        loser_tree = loser.tree()
        for bench in PAIR_BENCHES:
            cycles = harness.simulate(loser_tree, bench, "train").cycles
            autopilot.observe_evaluation({}, {
                "artifact": loser.artifact_id, "case": CASE,
                "machine": MACHINE, "benchmark": bench,
                "dataset": "train", "cycles": cycles})
            if campaign.phase != "canary":
                break

        assert campaign.phase == "rolled_back"
        assert registry.get_channel(CASE, MACHINE,
                                    "stable") == good.artifact_id
        assert registry.get_channel(CASE, MACHINE, "canary") is None
        records = [json.loads(line) for line in
                   (tmp_path / "autopilot"
                    / "decisions.jsonl").read_text().splitlines()]
        assert [r["event"] for r in records] == ["rolled_back"]
        assert records[0]["losses"] >= 3

    def test_inconclusive_canary_fails_safe(self, tmp_path):
        """max_pairs of pure ties (a canary identical in behaviour)
        is not worth keeping: rolled back."""
        registry = ArtifactRegistry(tmp_path / "store")
        good = make_artifact(BASELINE_EXPR, created_at=1.0)
        twin = make_artifact(f"(add 0.0000 {BASELINE_EXPR})",
                             created_at=2.0,
                             parent_id=good.artifact_id)
        registry.save(good)
        registry.save(twin)
        registry.set_channel(CASE, MACHINE, "stable", good.artifact_id)
        registry.set_channel(CASE, MACHINE, "canary", twin.artifact_id)

        config = autopilot_config(tmp_path / "autopilot", max_pairs=3)
        pool = HarnessPool()
        autopilot = Autopilot(config, registry, pool,
                              submit=lambda *a, **k: None)
        campaign = Campaign(
            name="t-0001", case=CASE, machine=MACHINE,
            benchmark="codrle4", dataset="train",
            parent_id=good.artifact_id, trigger_seq=1,
            root=autopilot.campaigns_dir / "t-0001", phase="canary",
            champion_id=twin.artifact_id)
        campaign.save()
        autopilot.campaigns[campaign.name] = campaign

        harness = pool.get(CASE)
        twin_tree = twin.tree()
        for bench in PAIR_BENCHES:
            cycles = harness.simulate(twin_tree, bench, "train").cycles
            autopilot.observe_evaluation({}, {
                "artifact": twin.artifact_id, "case": CASE,
                "machine": MACHINE, "benchmark": bench,
                "dataset": "train", "cycles": cycles})
            if campaign.phase != "canary":
                break
        assert campaign.phase == "rolled_back"
        assert registry.get_channel(CASE, MACHINE,
                                    "stable") == good.artifact_id
