"""Quality monitor: deterministic sampling, rolling windows, trip
logic, and restart persistence."""

import pytest

from repro.autopilot import AutopilotConfig, QualityMonitor
from repro.autopilot.monitor import traffic_hash

ART = "a" * 64


def config(tmp_path, **overrides):
    defaults = dict(state_dir=str(tmp_path / "autopilot"),
                    sample_rate=0.5, window_size=4, window_min=2,
                    threshold=0.999)
    defaults.update(overrides)
    return AutopilotConfig(**defaults)


class TestConfig:
    def test_round_trip(self, tmp_path):
        cfg = config(tmp_path)
        assert AutopilotConfig.from_json_dict(cfg.to_json_dict()) == cfg

    def test_unknown_field_rejected(self, tmp_path):
        data = config(tmp_path).to_json_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown autopilot"):
            AutopilotConfig.from_json_dict(data)

    @pytest.mark.parametrize("field,value", [
        ("sample_rate", 1.5),
        ("canary_fraction", -0.1),
        ("window_min", 0),
        ("window_size", 1),  # < window_min default 4
        ("max_pairs", 1),  # < min_pairs default 3
        ("alpha", 0.0),
        ("population", 1),
        ("generations", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            AutopilotConfig(**{field: value})


class TestSampling:
    def test_decision_is_a_function_of_the_count(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))
        first = [monitor.should_sample("hyperblock", "codrle4", "train")
                 for _ in range(16)]
        # mix of sampled and skipped at rate 0.5
        assert any(first) and not all(first)
        # replaying the same 16 observations against fresh state gives
        # the identical decision sequence
        replay = QualityMonitor(config(tmp_path / "other"))
        assert [replay.should_sample("hyperblock", "codrle4", "train")
                for _ in range(16)] == first

    def test_counts_survive_restart(self, tmp_path):
        cfg = config(tmp_path)
        monitor = QualityMonitor(cfg)
        first = [monitor.should_sample("hyperblock", "codrle4", "train")
                 for _ in range(8)]
        resumed = QualityMonitor(cfg)  # same state_dir: picks up counts
        rest = [resumed.should_sample("hyperblock", "codrle4", "train")
                for _ in range(8)]
        uninterrupted = QualityMonitor(config(tmp_path / "other"))
        assert first + rest == [
            uninterrupted.should_sample("hyperblock", "codrle4", "train")
            for _ in range(16)]

    def test_rate_extremes(self, tmp_path):
        always = QualityMonitor(config(tmp_path / "a", sample_rate=1.0))
        assert all(always.should_sample("c", "b", "train")
                   for _ in range(8))
        never = QualityMonitor(config(tmp_path / "b", sample_rate=0.0))
        assert not any(never.should_sample("c", "b", "train")
                       for _ in range(8))

    def test_traffic_hash_is_stable(self):
        assert traffic_hash("x") == traffic_hash("x")
        assert 0 <= traffic_hash("anything") < 10_000


class TestWindows:
    def test_same_benchmark_replaces_not_appends(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))
        for _ in range(5):
            summary = monitor.record(ART, "codrle4", "train", 0.9)
        assert summary["samples"] == 1

    def test_trip_needs_window_min_and_low_mean(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))
        assert monitor.record(ART, "b1", "train", 0.5)["tripped"] is False
        assert monitor.record(ART, "b2", "train", 0.5)["tripped"] is True
        # a healthy mean never trips
        other = "b" * 64
        monitor.record(other, "b1", "train", 1.2)
        assert monitor.record(other, "b2", "train",
                              1.1)["tripped"] is False

    def test_rolling_eviction(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))  # window_size=4
        for index in range(6):
            monitor.record(ART, f"b{index}", "train", 1.0 + index)
        status = monitor.status()[ART]
        assert status["samples"] == 4
        # the two oldest (1.0, 2.0) were evicted
        assert status["mean_speedup"] == pytest.approx(
            (3.0 + 4.0 + 5.0 + 6.0) / 4)

    def test_worst_benchmark_deterministic(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))
        monitor.record(ART, "slow", "train", 0.7)
        monitor.record(ART, "slower", "novel", 0.6)
        monitor.record(ART, "fine", "train", 1.1)
        assert monitor.worst_benchmark(ART) == ("slower", "novel")

    def test_windows_survive_restart(self, tmp_path):
        cfg = config(tmp_path)
        monitor = QualityMonitor(cfg)
        monitor.record(ART, "b1", "train", 0.5)
        resumed = QualityMonitor(cfg)
        assert resumed.record(ART, "b2", "train",
                              0.5)["tripped"] is True

    def test_reset_forgets_the_window(self, tmp_path):
        monitor = QualityMonitor(config(tmp_path))
        monitor.record(ART, "b1", "train", 0.5)
        monitor.record(ART, "b2", "train", 0.5)
        monitor.reset_window(ART)
        assert monitor.status() == {}
