"""Dominators, natural loops, and liveness analyses."""

import pytest

from repro.frontend import compile_source
from repro.ir.dominators import dominates, dominator_sets, immediate_dominators
from repro.ir.function import Function
from repro.ir.instr import Opcode, Rel, binop, br, cmp, jmp, mov, out, ret
from repro.ir.liveness import (
    analyze,
    block_use_def,
    dead_definitions,
    live_at_instruction,
)
from repro.ir.loops import find_loops, loop_depth_of_blocks
from repro.ir.values import INT, PRED, Imm


def loop_function():
    """entry -> head -> body -> head ; head -> done(ret)."""
    func = Function("f", [])
    i = func.new_vreg(INT, "i")
    c = func.new_vreg(INT, "c")
    entry = func.new_block("entry")
    head = func.new_block("head")
    body = func.new_block("body")
    done = func.new_block("done")
    entry.append(mov(i, Imm(0)))
    entry.append(jmp(head.label))
    head.append(cmp(c, Rel.LT, i, Imm(10)))
    head.append(br(c, body.label, done.label))
    body.append(binop(Opcode.ADD, i, i, Imm(1)))
    body.append(jmp(head.label))
    done.append(out(i))
    done.append(ret())
    func.validate()
    return func, i, entry, head, body, done


def nested_loop_source():
    return """
    void main() {
      int i;
      int j;
      int acc = 0;
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
          acc = acc + i * j;
        }
      }
      out(acc);
    }
    """


class TestDominators:
    def test_entry_has_no_idom(self):
        func, *_ = loop_function()
        idom = immediate_dominators(func)
        assert idom[func.block_order[0]] is None

    def test_linear_chain(self):
        func, _i, entry, head, body, done = loop_function()
        idom = immediate_dominators(func)
        assert idom[head.label] == entry.label
        assert idom[body.label] == head.label
        assert idom[done.label] == head.label

    def test_diamond_join_dominated_by_head(self):
        source = """
        int x;
        void main() {
          int a = 0;
          if (x > 0) { a = 1; } else { a = 2; }
          out(a);
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        dom_sets = dominator_sets(func)
        entry = func.block_order[0]
        for label in dom_sets:
            assert dominates(dom_sets, entry, label)

    def test_dominator_sets_include_self(self):
        func, *_ = loop_function()
        dom_sets = dominator_sets(func)
        for label, doms in dom_sets.items():
            assert label in doms


class TestLoops:
    def test_single_loop_found(self):
        func, _i, _entry, head, body, _done = loop_function()
        loops = find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == head.label
        assert loop.body == {head.label, body.label}
        assert loop.depth == 1

    def test_back_edges_recorded(self):
        func, _i, _entry, head, body, _done = loop_function()
        loop = find_loops(func)[0]
        assert (body.label, head.label) in loop.back_edges

    def test_exits(self):
        func, _i, _entry, head, _body, done = loop_function()
        loop = find_loops(func)[0]
        assert (head.label, done.label) in loop.exits(func)

    def test_nested_loops(self):
        module = compile_source(nested_loop_source())
        func = module.functions["main"]
        loops = find_loops(func)
        assert len(loops) == 2
        inner = max(loops, key=lambda lp: lp.depth)
        outer = min(loops, key=lambda lp: lp.depth)
        assert inner.depth == 2
        assert outer.depth == 1
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.body < outer.body

    def test_loop_depth_of_blocks(self):
        module = compile_source(nested_loop_source())
        func = module.functions["main"]
        depths = loop_depth_of_blocks(func)
        assert max(depths.values()) == 2
        assert depths[func.block_order[0]] == 0

    def test_no_loops_in_straightline(self):
        module = compile_source("void main() { out(1); }")
        assert find_loops(module.functions["main"]) == []


class TestLiveness:
    def test_loop_carried_value_live_around_loop(self):
        func, i, _entry, head, body, done = loop_function()
        liveness = analyze(func)
        assert i in liveness[head.label].live_in
        assert i in liveness[body.label].live_in
        assert i in liveness[body.label].live_out
        assert i in liveness[done.label].live_in

    def test_dead_after_last_use(self):
        func, i, _entry, _head, _body, done = loop_function()
        liveness = analyze(func)
        assert i not in liveness[done.label].live_out

    def test_use_def_upward_exposure(self):
        func, i, _entry, head, body, _done = loop_function()
        use, defs = block_use_def(func)[body.label]
        assert i in use  # read before (re)definition
        assert i in defs

    def test_guarded_def_counts_as_use(self):
        func = Function("f", [])
        x = func.new_vreg(INT, "x")
        guard = func.new_vreg(PRED, "g")
        entry = func.new_block("entry")
        entry.append(mov(x, Imm(5), guard=guard))
        entry.append(ret(x))
        use, _defs = block_use_def(func)[entry.label]
        assert x in use  # squashed write preserves the old value

    def test_live_at_instruction(self):
        func, i, _entry, head, _body, _done = loop_function()
        live_after = live_at_instruction(func)
        compare = func.blocks[head.label].instrs[0]
        assert i in live_after[compare.uid]

    def test_dead_definitions_found(self):
        func = Function("f", [])
        x = func.new_vreg(INT, "x")
        y = func.new_vreg(INT, "y")
        entry = func.new_block("entry")
        entry.append(mov(x, Imm(1)))  # dead
        entry.append(mov(y, Imm(2)))
        entry.append(ret(y))
        dead = dead_definitions(func)
        assert (entry.label, 0) in dead
        assert (entry.label, 1) not in dead

    def test_side_effects_never_dead(self):
        func = Function("f", [])
        x = func.new_vreg(INT, "x")
        entry = func.new_block("entry")
        entry.append(mov(x, Imm(1)))
        entry.append(out(x))
        entry.append(ret())
        labels = [d for d in dead_definitions(func)]
        assert labels == []
