"""Property-based liveness check: on random straight-line blocks the
analysis agrees with a brute-force definition of liveness."""

import random

from hypothesis import given, settings, strategies as st

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Opcode, binop, mov, out, ret
from repro.ir.values import INT, Imm, VReg
from repro.ir.liveness import analyze, live_at_instruction


def random_function(seed: int, length: int) -> Function:
    rng = random.Random(seed)
    func = Function("f", [])
    regs = [func.new_vreg(INT, f"r{i}") for i in range(6)]
    entry = func.new_block("entry")
    for reg in regs[:3]:
        entry.append(mov(reg, Imm(rng.randrange(10))))
    defined = set(regs[:3])
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5 and defined:
            sources = rng.sample(sorted(defined, key=lambda r: r.uid),
                                 k=min(2, len(defined)))
            dest = rng.choice(regs)
            left = sources[0]
            right = sources[-1]
            entry.append(binop(Opcode.ADD, dest, left, right))
            defined.add(dest)
        elif defined:
            entry.append(out(rng.choice(sorted(defined,
                                               key=lambda r: r.uid))))
        else:
            dest = rng.choice(regs)
            entry.append(mov(dest, Imm(1)))
            defined.add(dest)
    entry.append(ret())
    return func


def brute_force_live_after(block):
    """A register is live after instruction i iff some instruction
    j > i reads it before any unguarded write at k with i < k < j."""
    result = {}
    instrs = block.instrs
    for i, instr in enumerate(instrs):
        live = set()
        for candidate in {r for later in instrs[i + 1:]
                          for r in later.reads()}:
            for j in range(i + 1, len(instrs)):
                later = instrs[j]
                if candidate in later.reads():
                    live.add(candidate)
                    break
                if candidate in later.writes() and later.guard is None:
                    break
        result[instr.uid] = live
    return result


specs = st.tuples(
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=1, max_value=30),
)


class TestLivenessAgainstBruteForce:
    @settings(max_examples=80, deadline=None)
    @given(specs)
    def test_live_after_matches(self, spec):
        seed, length = spec
        func = random_function(seed, length)
        block = func.entry
        expected = brute_force_live_after(block)
        actual = live_at_instruction(func)
        for instr in block.instrs:
            assert actual[instr.uid] == expected[instr.uid], str(instr)

    @settings(max_examples=40, deadline=None)
    @given(specs)
    def test_straightline_live_out_empty(self, spec):
        seed, length = spec
        func = random_function(seed, length)
        liveness = analyze(func)
        assert liveness["entry0"].live_out == set()
        assert liveness["entry0"].live_in == set()
