"""Instruction-level tests: operand views, constructors, typing."""

import pytest

from repro.ir.instr import (
    FUClass,
    Instr,
    Opcode,
    Rel,
    binop,
    br,
    call,
    cmp,
    cmpp,
    jmp,
    lea,
    load,
    mov,
    out,
    prefetch,
    ret,
    store,
)
from repro.ir.values import FLOAT, INT, PRED, Imm, StackSlot, SymRef, VReg


def vreg(uid, vtype=INT, name=""):
    return VReg(uid, vtype, name)


class TestReadsWrites:
    def test_binop_reads_both_sources(self):
        a, b, c = vreg(0), vreg(1), vreg(2)
        instr = binop(Opcode.ADD, c, a, b)
        assert set(instr.reads()) == {a, b}
        assert instr.writes() == [c]

    def test_immediates_not_read(self):
        a, c = vreg(0), vreg(2)
        instr = binop(Opcode.ADD, c, a, Imm(5))
        assert instr.reads() == [a]

    def test_guard_is_read(self):
        a, c = vreg(0), vreg(2)
        guard = vreg(9, PRED)
        instr = mov(c, a, guard=guard)
        assert guard in instr.reads()

    def test_cmpp_writes_two(self):
        pt, pf = vreg(1, PRED), vreg(2, PRED)
        instr = cmpp(pt, pf, Rel.LT, vreg(0), Imm(3))
        assert set(instr.writes()) == {pt, pf}

    def test_cmpp_requires_predicate_dests(self):
        with pytest.raises(TypeError):
            cmpp(vreg(1), vreg(2), Rel.LT, vreg(0), Imm(3))

    def test_store_writes_nothing(self):
        instr = store(vreg(0), vreg(1))
        assert instr.writes() == []
        assert set(instr.reads()) == {vreg(0), vreg(1)}


class TestClassification:
    def test_fu_classes(self):
        assert binop(Opcode.ADD, vreg(0), vreg(1), vreg(2)).fu_class \
            is FUClass.INT
        assert binop(Opcode.FADD, vreg(0, FLOAT), vreg(1, FLOAT),
                     vreg(2, FLOAT)).fu_class is FUClass.FP
        assert load(vreg(0), vreg(1)).fu_class is FUClass.MEM
        assert jmp("x").fu_class is FUClass.BRANCH
        assert call(None, "f", ()).fu_class is FUClass.BRANCH

    def test_terminators(self):
        assert jmp("a").is_terminator
        assert br(vreg(0), "a", "b").is_terminator
        assert ret().is_terminator
        assert not call(None, "f", ()).is_terminator

    def test_side_effects(self):
        assert store(vreg(0), vreg(1)).has_side_effects
        assert out(vreg(0)).has_side_effects
        assert prefetch(vreg(0)).has_side_effects
        assert call(None, "f", ()).has_side_effects
        assert not mov(vreg(0), Imm(1)).has_side_effects
        assert not load(vreg(0), vreg(1)).has_side_effects

    def test_memory_ops(self):
        assert load(vreg(0), vreg(1)).is_memory
        assert store(vreg(0), vreg(1)).is_memory
        assert prefetch(vreg(0)).is_memory
        assert not mov(vreg(0), Imm(1)).is_memory

    def test_calls_are_hazards(self):
        assert call(vreg(0), "f", (vreg(1),)).hazard


class TestCopy:
    def test_copy_gets_fresh_uid(self):
        instr = mov(vreg(0), Imm(1))
        clone = instr.copy()
        assert clone.uid != instr.uid
        assert clone.op is instr.op
        assert clone.srcs == instr.srcs

    def test_uids_unique(self):
        instrs = [mov(vreg(i), Imm(i)) for i in range(100)]
        assert len({i.uid for i in instrs}) == 100


class TestPrinting:
    def test_str_forms(self):
        text = str(binop(Opcode.ADD, vreg(2, INT, "acc"), vreg(0), Imm(1)))
        assert "add" in text and "%r2.acc" in text

    def test_branch_targets_shown(self):
        assert "-> a, b" in str(br(vreg(0), "a", "b"))

    def test_guard_shown(self):
        instr = mov(vreg(0), Imm(1), guard=vreg(5, PRED, "pt"))
        assert str(instr).startswith("(%p5.pt)")

    def test_operand_strs(self):
        assert str(Imm(7)) == "7"
        assert str(SymRef("data")) == "@data"
        assert str(StackSlot(4, "sp")) == "stack[4].sp"
        assert str(vreg(3, FLOAT, "f")) == "%f3.f"
