"""Functional interpreter tests: scalar semantics, memory, control,
calls, predication, and error conditions."""

import pytest

from repro.frontend import compile_source
from repro.ir.function import Function, GlobalArray, Module
from repro.ir.instr import (
    Opcode,
    Rel,
    binop,
    br,
    call,
    cmp,
    cmpp,
    jmp,
    lea,
    load,
    mov,
    out,
    ret,
    store,
)
from repro.ir.interp import (
    Interpreter,
    InterpError,
    apply_scalar_op,
    int_div,
    int_rem,
    wrap_int,
)
from repro.ir.values import FLOAT, INT, PRED, Imm, StackSlot, SymRef


def run_source(source, inputs=None, **kwargs):
    module = compile_source(source)
    interp = Interpreter(module, **kwargs)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run()


class TestScalarHelpers:
    def test_wrap_int_positive_overflow(self):
        assert wrap_int(1 << 63) == -(1 << 63)

    def test_wrap_int_negative_overflow(self):
        assert wrap_int(-(1 << 63) - 1) == (1 << 63) - 1

    def test_wrap_int_identity_in_range(self):
        assert wrap_int(12345) == 12345
        assert wrap_int(-12345) == -12345

    def test_int_div_truncates_toward_zero(self):
        assert int_div(7, 2) == 3
        assert int_div(-7, 2) == -3
        assert int_div(7, -2) == -3
        assert int_div(-7, -2) == 3

    def test_int_rem_sign_follows_dividend(self):
        assert int_rem(7, 3) == 1
        assert int_rem(-7, 3) == -1
        assert int_rem(7, -3) == 1

    def test_apply_scalar_op_div_by_zero(self):
        with pytest.raises(InterpError):
            apply_scalar_op(Opcode.DIV, None, (1, 0))
        with pytest.raises(InterpError):
            apply_scalar_op(Opcode.FDIV, None, (1.0, 0.0))

    def test_apply_scalar_op_cmpp_pair(self):
        truth, complement = apply_scalar_op(Opcode.CMPP, Rel.LT, (1, 2))
        assert truth is True and complement is False

    def test_apply_scalar_op_shifts_are_arithmetic(self):
        assert apply_scalar_op(Opcode.SHR, None, (-8, 1)) == -4
        assert apply_scalar_op(Opcode.SHL, None, (1, 62)) == 1 << 62

    def test_apply_scalar_op_fsqrt_protected(self):
        assert apply_scalar_op(Opcode.FSQRT, None, (-9.0,)) == 3.0

    def test_apply_scalar_op_conversions(self):
        assert apply_scalar_op(Opcode.ITOF, None, (3,)) == 3.0
        assert apply_scalar_op(Opcode.FTOI, None, (3.9,)) == 3
        assert apply_scalar_op(Opcode.FTOI, None, (-3.9,)) == -3

    def test_apply_scalar_op_rejects_control(self):
        with pytest.raises(InterpError):
            apply_scalar_op(Opcode.JMP, None, ())


class TestExecution:
    def test_arith_program(self):
        result = run_source("""
        void main() {
          int a = 10;
          int b = 3;
          out(a / b);
          out(a % b);
          out(a * b - 1);
          out(a << 2);
          out(a >> 1);
          out(a & b);
          out(a | b);
          out(a ^ b);
        }
        """)
        assert result.outputs == [3, 1, 29, 40, 5, 2, 11, 9]

    def test_float_program(self):
        result = run_source("""
        void main() {
          float x = 2.5;
          out(x * 4.0);
          out(x / 2.0);
          out(sqrt(x * x));
          out(x + 1);
        }
        """)
        assert result.outputs == [10.0, 1.25, 2.5, 3.5]

    def test_globals_and_memory(self):
        result = run_source("""
        int data[4] = {10, 20, 30};
        void main() {
          data[3] = data[0] + data[1];
          out(data[3]);
          out(data[2]);
        }
        """)
        assert result.outputs == [30, 30]

    def test_set_and_read_global(self):
        module = compile_source("""
        int buf[4];
        void main() { buf[1] = 42; out(buf[0]); }
        """)
        interp = Interpreter(module)
        interp.set_global("buf", [7, 0, 0, 0])
        result = interp.run()
        assert result.outputs == [7]
        assert interp.read_global("buf")[:2] == [7, 42]

    def test_set_global_bounds_checked(self):
        module = compile_source("int a[2]; void main() { out(a[0]); }")
        interp = Interpreter(module)
        with pytest.raises(ValueError):
            interp.set_global("a", [1, 2, 3])
        with pytest.raises(KeyError):
            interp.set_global("zzz", [1])

    def test_recursion(self):
        result = run_source("""
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        void main() { out(fib(10)); }
        """)
        assert result.outputs == [55]

    def test_local_arrays_are_per_frame(self):
        result = run_source("""
        int leaf(int x) {
          int tmp[4];
          tmp[0] = x * 2;
          return tmp[0];
        }
        void main() {
          int tmp[4];
          tmp[0] = 5;
          out(leaf(7));
          out(tmp[0]);
        }
        """)
        assert result.outputs == [14, 5]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            run_source("void main() { int z = 0; out(1 / z); }")

    def test_step_budget(self):
        with pytest.raises(InterpError):
            run_source("""
            void main() {
              int i = 0;
              while (i < 1000000) { i = i + 1; }
              out(i);
            }
            """, max_steps=1000)

    def test_return_value(self):
        result = run_source("int main() { return 17; }")
        assert result.return_value == 17


class TestPredication:
    def _predicated_module(self, cond_value):
        module = Module()
        func = Function("main", [])
        x = func.new_vreg(INT, "x")
        c = func.new_vreg(INT, "c")
        pt = func.new_vreg(PRED, "pt")
        pf = func.new_vreg(PRED, "pf")
        entry = func.new_block("entry")
        entry.append(mov(x, Imm(0)))
        entry.append(mov(c, Imm(cond_value)))
        entry.append(cmpp(pt, pf, Rel.NE, c, Imm(0)))
        entry.append(mov(x, Imm(111), guard=pt))
        entry.append(mov(x, Imm(222), guard=pf))
        entry.append(out(x))
        entry.append(ret())
        module.add_function(func)
        module.validate()
        return module

    def test_taken_guard_executes(self):
        result = Interpreter(self._predicated_module(1)).run()
        assert result.outputs == [111]

    def test_false_guard_squashes(self):
        result = Interpreter(self._predicated_module(0)).run()
        assert result.outputs == [222]

    def test_branch_and_edge_callbacks(self):
        edges = []
        branches = []
        module = compile_source("""
        void main() {
          int i;
          for (i = 0; i < 3; i = i + 1) { out(i); }
        }
        """)
        interp = Interpreter(module, on_edge=lambda f, a, b: edges.append((a, b)),
                             on_branch=lambda f, uid, t: branches.append(t))
        interp.run()
        assert branches.count(True) == 3
        assert branches.count(False) == 1
        assert len(edges) >= 7

    def test_undefined_register_read_raises(self):
        module = Module()
        func = Function("main", [])
        x = func.new_vreg(INT, "x")
        entry = func.new_block("entry")
        entry.append(out(x))
        entry.append(ret())
        module.add_function(func)
        with pytest.raises(InterpError):
            Interpreter(module).run()


class TestOperandResolution:
    def test_symref_and_stackslot(self):
        module = Module()
        module.add_global(GlobalArray("g", 4, init=(9,)))
        func = Function("main", [])
        func.alloc_stack(2)
        addr = func.new_vreg(INT)
        value = func.new_vreg(INT)
        entry = func.new_block("entry")
        entry.append(lea(addr, SymRef("g")))
        entry.append(load(value, addr))
        entry.append(out(value))
        entry.append(store(StackSlot(0), value))
        entry.append(load(value, StackSlot(0)))
        entry.append(out(value))
        entry.append(ret())
        module.add_function(func)
        result = Interpreter(module).run()
        assert result.outputs == [9, 9]
