"""Function/module structure and CFG utility tests."""

import pytest

from repro.ir.block import Block
from repro.ir.cfg import (
    branch_blocks,
    cfg_counts,
    edge_list,
    merge_straightline,
    predecessors,
    reachable,
    remove_unreachable,
    retarget,
    reverse_postorder,
    split_edge,
    successors,
)
from repro.ir.function import Function, GlobalArray, Module, GLOBAL_BASE
from repro.ir.instr import Opcode, binop, br, jmp, mov, ret
from repro.ir.values import INT, Imm, VReg


def diamond_function():
    """entry -> (then | else) -> join -> exit(ret)."""
    func = Function("f", [])
    cond = func.new_vreg(INT, "c")
    entry = func.new_block("entry")
    then_blk = func.new_block("then")
    else_blk = func.new_block("else")
    join = func.new_block("join")
    entry.append(mov(cond, Imm(1)))
    entry.append(br(cond, then_blk.label, else_blk.label))
    then_blk.append(jmp(join.label))
    else_blk.append(jmp(join.label))
    join.append(ret())
    return func, entry, then_blk, else_blk, join


class TestBlock:
    def test_append_after_terminator_rejected(self):
        block = Block("b")
        block.append(ret())
        with pytest.raises(ValueError):
            block.append(ret())

    def test_terminator_accessor(self):
        block = Block("b")
        with pytest.raises(ValueError):
            block.terminator
        block.append(jmp("x"))
        assert block.terminator.op is Opcode.JMP

    def test_successors(self):
        block = Block("b", [br(VReg(0, INT), "t", "f")])
        assert block.successors() == ("t", "f")
        block2 = Block("c", [ret()])
        assert block2.successors() == ()

    def test_copy_independent(self):
        block = Block("b", [jmp("x")])
        clone = block.copy()
        clone.instrs.clear()
        assert block.is_closed()


class TestFunction:
    def test_validate_catches_unterminated(self):
        func = Function("f", [])
        func.new_block("entry")
        with pytest.raises(ValueError):
            func.validate()

    def test_validate_catches_unknown_target(self):
        func = Function("f", [])
        entry = func.new_block("entry")
        entry.append(jmp("nowhere"))
        with pytest.raises(ValueError):
            func.validate()

    def test_validate_catches_mid_block_terminator(self):
        func = Function("f", [])
        entry = func.new_block("entry")
        entry.instrs = [ret(), ret()]
        with pytest.raises(ValueError):
            func.validate()

    def test_vreg_numbering_continues_after_params(self):
        param = VReg(0, INT, "p")
        func = Function("f", [param])
        assert func.new_vreg(INT).uid == 1

    def test_stack_allocation(self):
        func = Function("f", [])
        first = func.alloc_stack(4, "arr")
        second = func.alloc_stack(2)
        assert (first, second) == (0, 4)
        assert func.frame_words == 6
        assert func.local_arrays["arr"] == (0, 4)
        with pytest.raises(ValueError):
            func.alloc_stack(0)

    def test_clone_is_deep(self):
        func, entry, *_ = diamond_function()
        clone = func.clone()
        clone.blocks[entry.label].instrs.clear()
        assert func.blocks[entry.label].instrs

    def test_clone_preserves_structure(self):
        func, *_ = diamond_function()
        clone = func.clone()
        clone.validate()
        assert clone.block_order == func.block_order
        assert clone.instruction_count() == func.instruction_count()


class TestModule:
    def test_layout_assigns_disjoint_ranges(self):
        module = Module()
        module.add_global(GlobalArray("a", 10))
        module.add_global(GlobalArray("b", 5))
        layout = module.layout()
        assert layout["a"] == GLOBAL_BASE
        assert layout["b"] == GLOBAL_BASE + 10
        assert module.global_end() == GLOBAL_BASE + 15

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global(GlobalArray("a", 1))
        with pytest.raises(ValueError):
            module.add_global(GlobalArray("a", 2))

    def test_bad_global_sizes(self):
        with pytest.raises(ValueError):
            GlobalArray("a", 0)
        with pytest.raises(ValueError):
            GlobalArray("a", 2, init=(1, 2, 3))

    def test_validate_checks_call_targets(self):
        from repro.ir.instr import call

        module = Module()
        func = Function("main", [])
        entry = func.new_block("entry")
        entry.append(call(None, "ghost", ()))
        entry.append(ret())
        module.add_function(func)
        with pytest.raises(ValueError):
            module.validate()


class TestCFG:
    def test_successors_predecessors(self):
        func, entry, then_blk, else_blk, join = diamond_function()
        succs = successors(func)
        preds = predecessors(func)
        assert set(succs[entry.label]) == {then_blk.label, else_blk.label}
        assert set(preds[join.label]) == {then_blk.label, else_blk.label}
        assert preds[entry.label] == []

    def test_reverse_postorder_entry_first(self):
        func, entry, then_blk, else_blk, join = diamond_function()
        order = reverse_postorder(func)
        assert order[0] == entry.label
        assert order.index(join.label) > order.index(then_blk.label)
        assert order.index(join.label) > order.index(else_blk.label)

    def test_reachable_and_removal(self):
        func, *_ = diamond_function()
        dead = func.new_block("dead")
        dead.append(ret())
        assert dead.label not in reachable(func)
        removed = remove_unreachable(func)
        assert removed == 1
        assert dead.label not in func.blocks

    def test_split_edge(self):
        func, entry, then_blk, _else_blk, _join = diamond_function()
        middle = split_edge(func, entry.label, then_blk.label)
        func.validate()
        assert middle.label in entry.terminator.targets
        assert middle.successors() == (then_blk.label,)

    def test_split_edge_requires_edge(self):
        func, entry, _t, _e, join = diamond_function()
        with pytest.raises(ValueError):
            split_edge(func, entry.label, join.label)

    def test_retarget(self):
        func, entry, then_blk, else_blk, join = diamond_function()
        retarget(func.blocks[then_blk.label], join.label, else_blk.label)
        assert func.blocks[then_blk.label].successors() == (else_blk.label,)

    def test_merge_straightline(self):
        func = Function("f", [])
        a = func.new_block("a")
        b = func.new_block("b")
        reg = func.new_vreg(INT)
        a.append(mov(reg, Imm(1)))
        a.append(jmp(b.label))
        b.append(binop(Opcode.ADD, reg, reg, Imm(2)))
        b.append(ret(reg))
        merged = merge_straightline(func)
        assert merged == 1
        assert list(func.blocks) == [a.label]
        func.validate()

    def test_merge_skips_multi_pred_targets(self):
        func, *_ = diamond_function()
        before = set(func.blocks)
        merge_straightline(func)
        # join has two predecessors: nothing merged into it.
        assert set(func.blocks) == before

    def test_counts_and_edges(self):
        func, *_ = diamond_function()
        counts = cfg_counts(func)
        assert counts == {"blocks": 4, "edges": 4, "branches": 1}
        assert len(edge_list(func)) == 4
        assert len(branch_blocks(func)) == 1
