"""Lexer tests: token kinds, comments, literals, diagnostics."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import TokKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        tokens = kinds("int x while whilex")
        assert tokens == [
            (TokKind.KEYWORD, "int"),
            (TokKind.IDENT, "x"),
            (TokKind.KEYWORD, "while"),
            (TokKind.IDENT, "whilex"),
        ]

    def test_all_keywords(self):
        for word in ("int", "float", "void", "if", "else", "while",
                     "for", "return", "break", "continue", "out"):
            assert tokenize(word)[0].kind is TokKind.KEYWORD

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind is TokKind.EOF

    def test_integer_literal(self):
        assert kinds("42") == [(TokKind.INT_LIT, "42")]

    def test_float_literals(self):
        assert kinds("1.5 .5 2.") == [
            (TokKind.FLOAT_LIT, "1.5"),
            (TokKind.FLOAT_LIT, ".5"),
            (TokKind.FLOAT_LIT, "2."),
        ]

    def test_underscored_identifier(self):
        assert kinds("_foo_bar9") == [(TokKind.IDENT, "_foo_bar9")]


class TestOperators:
    def test_multichar_operators(self):
        text = "<< >> <= >= == != && ||"
        assert [t for _k, t in kinds(text)] == text.split()

    def test_multichar_wins_over_single(self):
        assert [t for _k, t in kinds("a<=b")] == ["a", "<=", "b"]
        assert [t for _k, t in kinds("a<b")] == ["a", "<", "b"]

    def test_punctuation(self):
        assert [t for _k, t in kinds("(){}[];,")] == list("(){}[];,")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [
            (TokKind.IDENT, "a"), (TokKind.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokKind.IDENT, "a"), (TokKind.IDENT, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestDiagnostics:
    def test_locations_track_lines(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12abc")
