"""Lowering tests: golden program behaviours via the interpreter, plus
structural properties of the emitted IR (hazard flags, short-circuit
control flow)."""

import pytest

from repro.frontend import compile_source
from repro.ir.instr import Opcode
from repro.ir.interp import Interpreter


def run(source, inputs=None, entry="main"):
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run(entry=entry)


class TestGoldenPrograms:
    def test_gcd(self):
        result = run("""
        int gcd(int a, int b) {
          while (b != 0) {
            int t = b;
            b = a % b;
            a = t;
          }
          return a;
        }
        void main() { out(gcd(1071, 462)); out(gcd(17, 5)); }
        """)
        assert result.outputs == [21, 1]

    def test_sieve(self):
        result = run("""
        int flags[64];
        void main() {
          int count = 0;
          int i;
          for (i = 2; i < 64; i = i + 1) {
            if (flags[i] == 0) {
              count = count + 1;
              int j;
              for (j = i + i; j < 64; j = j + i) { flags[j] = 1; }
            }
          }
          out(count);
        }
        """)
        assert result.outputs == [18]  # primes below 64

    def test_nested_breaks_and_continues(self):
        result = run("""
        void main() {
          int total = 0;
          int i;
          for (i = 0; i < 10; i = i + 1) {
            if (i == 7) { break; }
            if (i % 2 == 0) { continue; }
            int j = 0;
            while (1) {
              j = j + 1;
              if (j >= i) { break; }
            }
            total = total + j;
          }
          out(total);
          out(i);
        }
        """)
        assert result.outputs == [1 + 3 + 5, 7]

    def test_float_int_conversions(self):
        result = run("""
        void main() {
          int i = 7;
          float f = i / 2;      // integer division, then convert
          out(f);
          float g = i / 2.0;    // float division
          out(g);
          int t = 3.9;          // truncation
          out(t);
          int u = 0 - 1;
          float h = u;
          out(h);
        }
        """)
        assert result.outputs == [3.0, 3.5, 3, -1.0]

    def test_global_scalars(self):
        result = run("""
        int counter;
        void bump() { counter = counter + 1; }
        void main() {
          bump();
          bump();
          bump();
          out(counter);
        }
        """)
        assert result.outputs == [3]

    def test_builtin_semantics(self):
        result = run("""
        void main() {
          out(abs(-17));
          out(abs(17));
          out(abs(0));
          out(fabs(0.0 - 2.25));
          out(fabs(2.25));
          out(sqrt(144.0));
        }
        """)
        assert result.outputs == [17, 17, 0, 2.25, 2.25, 12.0]

    def test_unary_not(self):
        result = run("""
        void main() {
          out(!0);
          out(!5);
          out(!!7);
        }
        """)
        assert result.outputs == [1, 0, 1]

    def test_implicit_return_zero(self):
        result = run("""
        int f(int x) {
          if (x > 0) { return 1; }
        }
        void main() { out(f(1)); out(f(-1)); }
        """)
        assert result.outputs == [1, 0]


class TestShortCircuit:
    def test_and_skips_rhs(self):
        result = run("""
        int calls;
        int bump() { calls = calls + 1; return 1; }
        void main() {
          int x = 0;
          if (x != 0 && bump() == 1) { out(99); }
          out(calls);
        }
        """)
        assert result.outputs == [0]

    def test_or_skips_rhs(self):
        result = run("""
        int calls;
        int bump() { calls = calls + 1; return 1; }
        void main() {
          int x = 1;
          if (x == 1 || bump() == 1) { out(42); }
          out(calls);
        }
        """)
        assert result.outputs == [42, 0]

    def test_logical_results_normalized(self):
        result = run("""
        void main() {
          int a = 7;
          out(a && 9);
          out(0 || 12);
          out(a && 0);
        }
        """)
        assert result.outputs == [1, 1, 0]


class TestIRStructure:
    def test_indirect_access_marked_hazard(self):
        module = compile_source("""
        int a[8];
        int b[8];
        void main() { out(a[b[2]]); }
        """)
        loads = [i for i in module.functions["main"].instructions()
                 if i.op is Opcode.LOAD]
        assert any(l.hazard for l in loads)
        # the inner load (b[2]) is direct
        assert any(not l.hazard for l in loads)

    def test_direct_access_not_hazard(self):
        module = compile_source("""
        int a[8];
        void main() { int i = 1; out(a[i + 1]); }
        """)
        loads = [i for i in module.functions["main"].instructions()
                 if i.op is Opcode.LOAD]
        assert all(not l.hazard for l in loads)

    def test_calls_marked_hazard(self):
        module = compile_source("""
        int f(int x) { return x; }
        void main() { out(f(1)); }
        """)
        calls = [i for i in module.functions["main"].instructions()
                 if i.op is Opcode.CALL]
        assert calls and all(c.hazard for c in calls)

    def test_if_lowered_to_diamond(self):
        module = compile_source("""
        int x;
        void main() {
          int a = 0;
          if (x > 0) { a = 1; } else { a = 2; }
          out(a);
        }
        """)
        func = module.functions["main"]
        branches = [i for i in func.instructions() if i.op is Opcode.BR]
        assert len(branches) == 1

    def test_module_validates(self):
        module = compile_source("""
        int helper(int x) { return x * 2; }
        void main() {
          int i;
          for (i = 0; i < 3; i = i + 1) { out(helper(i)); }
        }
        """)
        module.validate()

    def test_local_array_gets_stack(self):
        module = compile_source("""
        void main() {
          int scratch[16];
          scratch[0] = 1;
          out(scratch[0]);
        }
        """)
        assert module.functions["main"].frame_words == 16
