"""Parser and semantic-analysis tests."""

import pytest

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError, SyntaxErrorMC
from repro.frontend.parser import parse_source
from repro.frontend.sema import analyze


def parse_main(body):
    return parse_source("void main() { %s }" % body)


def analyze_main(body):
    return analyze(parse_main(body))


class TestParserStructure:
    def test_globals_and_functions_separated(self):
        program = parse_source("""
        int g[4];
        float f;
        int helper(int x) { return x; }
        void main() { out(1); }
        """)
        assert [g.name for g in program.globals] == ["g", "f"]
        assert [f.name for f in program.functions] == ["helper", "main"]

    def test_global_initializers(self):
        program = parse_source("int a[3] = {1, -2, 3}; void main() { out(a[0]); }")
        assert program.globals[0].init == [1, -2, 3]

    def test_global_scalar_initializer(self):
        program = parse_source("float pi = 3.14; void main() { out(pi); }")
        assert program.globals[0].init == [3.14]

    def test_else_if_chain(self):
        program = parse_main(
            "int x = 0; if (x > 0) { out(1); } else if (x < 0) { out(2); }"
            " else { out(3); }"
        )
        if_stmt = program.functions[0].body.body[1]
        assert isinstance(if_stmt, ast.IfStmt)
        nested = if_stmt.else_body.body[0]
        assert isinstance(nested, ast.IfStmt)
        assert nested.else_body is not None

    def test_for_parts_optional(self):
        program = parse_main("int i = 0; for (;;) { break; } out(i);")
        for_stmt = program.functions[0].body.body[1]
        assert for_stmt.init is None
        assert for_stmt.condition is None
        assert for_stmt.step is None


class TestParserPrecedence:
    def _expr(self, text):
        program = parse_main(f"int r = {text};")
        return program.functions[0].body.body[0].init

    def test_mul_binds_tighter_than_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_below_arithmetic(self):
        expr = self._expr("1 + 2 < 3 * 4")
        assert expr.op == "<"

    def test_logical_lowest(self):
        expr = self._expr("1 < 2 && 3 < 4 || 0")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_binds_tightest(self):
        expr = self._expr("-x * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Unary)

    def test_shift_precedence(self):
        expr = self._expr("1 << 2 + 3")
        assert expr.op == "<<"


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorMC):
            parse_main("int x = 1 out(x);")

    def test_unterminated_block(self):
        with pytest.raises(SyntaxErrorMC):
            parse_source("void main() { out(1);")

    def test_braces_required(self):
        with pytest.raises(SyntaxErrorMC):
            parse_main("if (1) out(1);")

    def test_bad_for_init(self):
        with pytest.raises(SyntaxErrorMC):
            parse_main("for (1 + 2;;) { }")

    def test_array_size_must_be_literal(self):
        with pytest.raises(SyntaxErrorMC):
            parse_source("int n; int a[n]; void main() { }")


class TestSemaTypes:
    def test_expression_types_annotated(self):
        program = analyze_main("int x = 1; float y = 2.0; out(x + y);")
        out_stmt = program.functions[0].body.body[2]
        assert out_stmt.value.ctype == "float"

    def test_comparison_yields_int(self):
        program = analyze_main("float y = 2.0; out(y < 3.0);")
        assert program.functions[0].body.body[1].value.ctype == "int"

    def test_modulo_requires_int(self):
        with pytest.raises(SemanticError):
            analyze_main("float y = 2.0; out(y % 2);")

    def test_condition_must_be_int(self):
        with pytest.raises(SemanticError):
            analyze_main("float y = 2.0; if (y) { out(1); }")

    def test_logical_operands_must_be_int(self):
        with pytest.raises(SemanticError):
            analyze_main("float y = 2.0; out(y && 1);")


class TestSemaNames:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            analyze_main("out(nope);")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemanticError):
            analyze_main("int x = 1; int x = 2;")

    def test_shadowing_in_inner_scope_allowed(self):
        analyze_main("int x = 1; { int x = 2; out(x); } out(x);")

    def test_array_without_subscript(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("int a[4]; void main() { out(a); }"))

    def test_subscript_of_scalar(self):
        with pytest.raises(SemanticError):
            analyze_main("int x = 1; out(x[0]);")

    def test_array_index_must_be_int(self):
        with pytest.raises(SemanticError):
            analyze(parse_source(
                "int a[4]; void main() { float f = 0.0; out(a[f]); }"
            ))

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_source(
                "int a[4]; void main() { a = 3; }"
            ))


class TestSemaFunctions:
    def test_main_required(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("void helper() { out(1); }"))

    def test_main_takes_no_params(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("void main(int x) { out(x); }"))

    def test_call_arity_checked(self):
        with pytest.raises(SemanticError):
            analyze(parse_source(
                "int f(int a, int b) { return a + b; }"
                "void main() { out(f(1)); }"
            ))

    def test_undefined_function(self):
        with pytest.raises(SemanticError):
            analyze_main("out(ghost(1));")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("void main() { return 3; }"))

    def test_nonvoid_return_without_value_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("int main() { return; }"))

    def test_duplicate_parameter(self):
        with pytest.raises(SemanticError):
            analyze(parse_source(
                "int f(int a, int a) { return a; } void main() { out(f(1,2)); }"
            ))

    def test_redefined_function(self):
        with pytest.raises(SemanticError):
            analyze(parse_source(
                "int f(int a) { return a; } int f(int b) { return b; }"
                "void main() { }"
            ))

    def test_builtins_recognized(self):
        analyze_main("out(sqrt(2.0)); out(abs(-3)); out(fabs(-1.5));")


class TestSemaControl:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze_main("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze_main("continue;")

    def test_break_inside_loop_ok(self):
        analyze_main("while (1) { break; }")
