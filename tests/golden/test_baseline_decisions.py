"""Golden-file regression tests for the baseline heuristic decisions.

The paper's three case studies each replace one hand-written priority
function; everything downstream (which regions convert, which ranges
get colours, which loads get prefetches) hangs off those numbers.
These tests pin, for every benchmark in the suite, the decisions each
baseline heuristic makes:

* **hyperblock** — Equation 1 path priorities (rounded) and the
  convert/reject verdict for every region the pass considered;
* **regalloc**  — Equation 2 savings (rounded) for every constrained
  live range, plus which ranges spilled;
* **prefetch**  — the Boolean verdict for every candidate load;
* **inline**    — the size-threshold priority (rounded) and the
  inline/reject verdict for every legal call site;
* **unroll**    — the per-candidate-factor scores (rounded) and the
  chosen factor for every analyzable loop.

A diff here means the *heuristic input features or the decision logic
changed*, which silently shifts every published number in the repro.
When the change is intentional, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens

and review the JSON diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.frontend import compile_source
from repro.metaopt.harness import case_study
from repro.passes.pipeline import compile_backend, prepare
from repro.suite.registry import all_benchmarks, get as get_benchmark

GOLDEN_PATH = Path(__file__).parent / "baseline_decisions.json"

#: Decision values are rounded before pinning so the goldens survive
#: harmless float-formatting churn but still catch real changes.
DIGITS = 6

BENCHMARKS = sorted(all_benchmarks())


def _hyperblock_entry(report):
    return [
        {
            "head": decision.head,
            "join": decision.join,
            "priorities": [round(p, DIGITS) for p in decision.priorities],
            "converted": decision.converted,
        }
        for decision in report.decisions
    ]


def _regalloc_entry(report):
    return {
        "constrained": report.constrained,
        "spilled": sorted(report.spilled),
        "priorities": {
            reg: round(priority, DIGITS)
            for reg, priority in sorted(report.priorities.items())
        },
    }


def _prefetch_entry(report):
    return [[label, verdict] for label, verdict in report.decisions]


def _inline_entry(report):
    return [
        {
            "caller": decision.caller,
            "callee": decision.callee,
            "priority": round(decision.priority, DIGITS),
            "inlined": decision.inlined,
        }
        for decision in report.decisions
    ]


def _unroll_entry(report):
    return [
        {
            "function": decision.function,
            "header": decision.header,
            "trip_count": decision.trip_count,
            "priorities": {
                str(factor): round(priority, DIGITS)
                for factor, priority in sorted(decision.priorities.items())
            },
            "factor": decision.factor,
        }
        for decision in report.decisions
    ]


def baseline_decisions(benchmark: str) -> dict:
    """All five baseline heuristics' decisions on one benchmark.

    The prepare-stage cases (inline, unroll) read their reports off
    :class:`~repro.passes.pipeline.PreparedProgram`; the backend cases
    read theirs off the compile report.
    """
    bench = get_benchmark(benchmark)
    entry = {}
    for case_name in ("hyperblock", "regalloc", "prefetch"):
        case = case_study(case_name)
        module = compile_source(bench.source, bench.name)
        prepared = prepare(module, bench.inputs("train"), case.options)
        _scheduled, report = compile_backend(prepared)
        if case_name == "hyperblock":
            entry["hyperblock"] = {
                name: _hyperblock_entry(rep)
                for name, rep in sorted(report.hyperblock.items())
                if rep.decisions
            }
            # prepare-stage decisions are candidate-independent of the
            # backend case, so one prepared program pins both
            entry["inline"] = _inline_entry(prepared.inline_report)
            entry["unroll"] = _unroll_entry(prepared.unroll_report)
        elif case_name == "regalloc":
            entry["regalloc"] = {
                name: _regalloc_entry(rep)
                for name, rep in sorted(report.regalloc.items())
                if rep.constrained or rep.spilled
            }
        else:
            entry["prefetch"] = {
                name: _prefetch_entry(rep)
                for name, rep in sorted(report.prefetch.items())
                if rep.decisions
            }
    return entry


def load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def store_golden(benchmark: str, entry: dict) -> None:
    goldens = load_goldens()
    goldens[benchmark] = entry
    GOLDEN_PATH.write_text(
        json.dumps(goldens, indent=1, sort_keys=True) + "\n")


# the parameter is named bench_name (not "benchmark") to stay clear
# of the pytest-benchmark plugin's fixture of that name
@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_baseline_decisions(bench_name, update_goldens):
    entry = baseline_decisions(bench_name)
    if update_goldens:
        store_golden(bench_name, entry)
        return
    goldens = load_goldens()
    assert bench_name in goldens, (
        f"no golden entry for {bench_name!r}; run pytest tests/golden "
        "--update-goldens")
    assert entry == goldens[bench_name], (
        f"baseline heuristic decisions changed on {bench_name!r}; if "
        "intentional, regenerate with --update-goldens and review the "
        "JSON diff")


def test_goldens_cover_exactly_the_suite():
    """The golden file tracks the benchmark registry 1:1 — a new
    benchmark must get an entry, a removed one must drop its stale
    entry."""
    assert sorted(load_goldens()) == BENCHMARKS


def test_goldens_have_decisions_somewhere():
    """Sanity: the pinned file is not vacuously empty."""
    goldens = load_goldens()
    assert any(entry["hyperblock"] for entry in goldens.values())
    assert any(entry["regalloc"] for entry in goldens.values())
    assert any(entry["prefetch"] for entry in goldens.values())
    assert any(entry["inline"] for entry in goldens.values())
    assert any(entry["unroll"] for entry in goldens.values())
