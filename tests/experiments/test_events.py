"""Event sinks and the documented event-stream schema.

The golden field sets below ARE the schema contract of
``docs/EXPERIMENTS_API.md``; a failure here means either a regression
or an intentional schema change that must bump
``repro.experiments.events.SCHEMA_VERSION`` and update the docs.
"""

import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    JsonlSink,
    MemorySink,
    MultiSink,
    PrettySink,
)
from repro.gp.engine import GPParams

GOLDEN_FIELDS = {
    "run_started": {"event", "schema", "mode", "case", "resumed",
                    "start_generation", "config"},
    "generation": {"event", "generation", "subset", "best_fitness",
                   "mean_fitness", "best_size", "mean_size",
                   "unique_structures", "baseline_rank",
                   "best_expression", "evaluations_total",
                   "new_evaluations", "counters", "wall_s"},
    "metrics": {"event", "generation", "metrics"},
    "checkpoint_saved": {"event", "generation", "path"},
    "run_interrupted": {"event", "next_generation"},
    "artifact_published": {"event", "artifact_id", "store"},
    "surrogate": {"event", "generation", "sims_saved", "rank_corr",
                  "refits", "promotions"},
    "run_finished": {"event", "result", "wall_s"},
}


def tiny_config(**overrides):
    defaults = dict(
        mode="specialize", case="hyperblock", benchmark="codrle4",
        params=GPParams(population_size=8, generations=2, seed=0))
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def run_events(tmp_path_factory):
    """One tiny persisted run; yields (memory events, jsonl lines)."""
    run_dir = tmp_path_factory.mktemp("events") / "run"
    memory = MemorySink()
    ExperimentRunner(tiny_config(), run_dir=run_dir,
                     sinks=(memory,)).run()
    lines = [json.loads(line) for line in
             (run_dir / "events.jsonl").read_text().splitlines()]
    return memory, lines


class TestSchema:
    def test_event_sequence(self, run_events):
        memory, _ = run_events
        kinds = [event["event"] for event in memory.events]
        assert kinds == ["run_started",
                        "generation", "checkpoint_saved",
                        "generation", "checkpoint_saved",
                        "run_finished"]

    def test_golden_field_sets(self, run_events):
        memory, _ = run_events
        for event in memory.events:
            assert set(event) == GOLDEN_FIELDS[event["event"]], \
                f"schema drift in {event['event']!r}"

    def test_jsonl_mirrors_memory_sink(self, run_events):
        memory, lines = run_events
        assert [e["event"] for e in lines] == \
            [e["event"] for e in memory.events]

    def test_events_json_serializable(self, run_events):
        memory, _ = run_events
        for event in memory.events:
            json.dumps(event)

    def test_generation_events_carry_progress(self, run_events):
        memory, _ = run_events
        generations = memory.of_type("generation")
        assert [e["generation"] for e in generations] == [0, 1]
        for event in generations:
            assert event["best_fitness"] > 0
            assert event["new_evaluations"] >= 0
            assert event["wall_s"] >= 0
            assert isinstance(event["counters"], dict)

    def test_run_finished_embeds_result_payload(self, run_events):
        memory, _ = run_events
        finished = memory.of_type("run_finished")[0]
        assert finished["result"]["mode"] == "specialize"
        assert "train_speedup" in finished["result"]

    def test_schema_version_covers_optional_events(self):
        from repro.experiments.events import EVENT_TYPES, SCHEMA_VERSION

        assert SCHEMA_VERSION == 4
        assert "metrics" in EVENT_TYPES
        assert "artifact_published" in EVENT_TYPES
        assert "surrogate" in EVENT_TYPES
        assert set(EVENT_TYPES) == set(GOLDEN_FIELDS)


class TestMetricsEvents:
    """collect_metrics=True adds per-generation ``metrics`` events."""

    @pytest.fixture(scope="class")
    def metrics_events(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("metrics-events") / "run"
        memory = MemorySink()
        ExperimentRunner(tiny_config(), run_dir=run_dir, sinks=(memory,),
                         collect_metrics=True).run()
        return memory

    def test_one_metrics_event_per_generation(self, metrics_events):
        metrics = metrics_events.of_type("metrics")
        generations = metrics_events.of_type("generation")
        assert [e["generation"] for e in metrics] == \
            [e["generation"] for e in generations]

    def test_metrics_event_schema(self, metrics_events):
        for event in metrics_events.of_type("metrics"):
            assert set(event) == GOLDEN_FIELDS["metrics"]
            snapshot = event["metrics"]
            assert set(snapshot) == {"counters", "gauges", "histograms"}
            json.dumps(event)

    def test_metrics_deltas_carry_generation_activity(self, metrics_events):
        first = metrics_events.of_type("metrics")[0]["metrics"]
        assert first["counters"]["gp.evaluations"] > 0
        assert first["counters"]["harness.sims"] > 0
        assert first["gauges"]["gp.best_fitness"] > 0
        assert "gp.eval_seconds" in first["histograms"]

    def test_metrics_disabled_by_default(self, run_events):
        memory, _ = run_events
        assert memory.of_type("metrics") == []

    def test_metrics_never_reach_result_json(self, metrics_events):
        finished = metrics_events.of_type("run_finished")[0]
        assert "metrics" not in finished["result"]


class TestSinks:
    def test_memory_sink_filters(self):
        sink = MemorySink()
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        assert len(sink.of_type("a")) == 1

    def test_multi_sink_fans_out(self):
        first, second = MemorySink(), MemorySink()
        multi = MultiSink([first, second])
        multi.emit({"event": "x"})
        assert first.events == second.events == [{"event": "x"}]

    def test_jsonl_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for value in (1, 2):
            sink = JsonlSink(path)
            sink.emit({"event": "tick", "value": value})
            sink.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["value"] for line in lines] == [1, 2]

    def test_pretty_sink_narrates(self, capsys):
        sink = PrettySink()
        sink.emit({"event": "run_started", "resumed": False,
                   "mode": "specialize", "case": "hyperblock",
                   "start_generation": 0})
        sink.emit({"event": "generation", "generation": 0,
                   "subset": ["codrle4"], "best_fitness": 1.25,
                   "best_size": 3, "new_evaluations": 8,
                   "wall_s": 0.5})
        output = capsys.readouterr().out
        assert "starting specialize run" in output
        assert "best 1.2500" in output


class TestArtifactPublishedEvent:
    """publish_dir=... adds one ``artifact_published`` event (and
    nothing to result.json)."""

    @pytest.fixture(scope="class")
    def publish_events(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("publish-events")
        memory = MemorySink()
        result = ExperimentRunner(tiny_config(), run_dir=base / "run",
                                  sinks=(memory,),
                                  publish_dir=base / "store").run()
        return memory, result, base

    def test_event_emitted_before_run_finished(self, publish_events):
        memory, _, _ = publish_events
        kinds = [event["event"] for event in memory.events]
        assert kinds[-2:] == ["artifact_published", "run_finished"]
        published = memory.of_type("artifact_published")[0]
        assert set(published) == GOLDEN_FIELDS["artifact_published"]

    def test_artifact_lands_in_store_and_result(self, publish_events):
        from repro.serve.registry import ArtifactRegistry

        memory, result, base = publish_events
        published = memory.of_type("artifact_published")[0]
        assert result.artifact_id == published["artifact_id"]
        registry = ArtifactRegistry(base / "store")
        artifact = registry.load(published["artifact_id"])
        assert artifact.case == "hyperblock"
        assert artifact.verify() == []

    def test_result_json_stays_artifact_free(self, publish_events):
        memory, _, base = publish_events
        result_doc = json.loads((base / "run" / "result.json").read_text())
        assert "artifact_id" not in result_doc
        finished = memory.of_type("run_finished")[0]
        assert "artifact_id" not in finished["result"]
