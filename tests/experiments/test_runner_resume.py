"""Resume-equals-uninterrupted determinism, run-directory layout, and
checkpoint plumbing — the acceptance criteria of the experiments
subsystem.  Campaigns here are tiny (pop 8, 2–4 generations) but real:
they compile and simulate actual suite benchmarks.

Campaign execution goes through the shared ``campaign_run`` fixture
(tests/conftest.py), the same driver the fleet and surrogate suites
use.
"""

import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    MemorySink,
    load_checkpoint,
    run_experiment,
    save_checkpoint,
)
from repro.gp.engine import GPParams


def spec_config(generations=4, processes=1, **overrides):
    defaults = dict(
        mode="specialize", case="hyperblock", benchmark="codrle4",
        params=GPParams(population_size=8, generations=generations,
                        seed=0),
        processes=processes)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def gen_config(generations=3):
    return ExperimentConfig(
        mode="generalize", case="hyperblock",
        training_set=("rawcaudio", "codrle4"),
        test_set=("decodrle4",),
        params=GPParams(population_size=8, generations=generations,
                        seed=2),
        subset_size=1)


class TestResumeDeterminism:
    @pytest.mark.parametrize("stop_after", [0, 1, 2])
    def test_serial_resume_byte_identical(self, campaign_run, stop_after):
        config = spec_config()
        full = campaign_run.run_full(config)
        resumed = campaign_run.run_killed_then_resumed(config, stop_after)
        assert resumed == full

    def test_parallel_resume_byte_identical(self, campaign_run):
        config = spec_config(generations=3, processes=2)
        full = campaign_run.run_full(config)
        resumed = campaign_run.run_killed_then_resumed(config,
                                                       stop_after=1)
        assert resumed == full

    def test_serial_and_parallel_agree(self, campaign_run):
        serial = json.loads(campaign_run.run_full(
            spec_config(generations=3), name="serial"))
        parallel = json.loads(campaign_run.run_full(
            spec_config(generations=3, processes=2), name="pool"))
        serial.pop("config"), parallel.pop("config")
        assert serial == parallel

    def test_generalize_dss_resume_byte_identical(self, campaign_run):
        config = gen_config()
        full = campaign_run.run_full(config)
        resumed = campaign_run.run_killed_then_resumed(config,
                                                       stop_after=0)
        assert resumed == full

    def test_double_kill_then_resume(self, campaign_run, tmp_path):
        """Kill, resume, kill again, resume again — each leg continues
        from the latest checkpoint."""
        config = spec_config(generations=4)
        full = campaign_run.run_full(config)
        run_dir = tmp_path / "killed"
        assert ExperimentRunner(
            config, run_dir=run_dir,
            stop_after_generation=0).run().interrupted
        assert ExperimentRunner.from_run_dir(
            run_dir, stop_after_generation=2).run(resume=True).interrupted
        ExperimentRunner.from_run_dir(run_dir).run(resume=True)
        assert (run_dir / "result.json").read_bytes() == full

    def test_keyboard_interrupt_leaves_resumable_checkpoint(
            self, campaign_run, tmp_path):
        """A real interrupt (not the test flag) mid-run still resumes
        bit-identically — the sink raises after the second generation's
        checkpoint is on disk."""
        config = spec_config()
        full = campaign_run.run_full(config)

        class Bomb(MemorySink):
            def emit(self, event):
                super().emit(event)
                if (event["event"] == "generation"
                        and event["generation"] == 1):
                    raise KeyboardInterrupt

        run_dir = tmp_path / "killed"
        with pytest.raises(KeyboardInterrupt):
            ExperimentRunner(config, run_dir=run_dir,
                             sinks=(Bomb(),)).run()
        ExperimentRunner.from_run_dir(run_dir).run(resume=True)
        assert (run_dir / "result.json").read_bytes() == full


class TestRunDirectory:
    def test_layout(self, campaign_run):
        campaign_run.run_full(spec_config(generations=2), name="run")
        run_dir = campaign_run.base / "run"
        assert (run_dir / "config.json").exists()
        assert (run_dir / "events.jsonl").exists()
        assert (run_dir / "checkpoint.pkl").exists()
        assert (run_dir / "result.json").exists()
        snapshots = sorted(
            p.name for p in (run_dir / "populations").iterdir())
        assert snapshots == ["gen_0000.jsonl", "gen_0001.jsonl"]

    def test_population_snapshot_contents(self, campaign_run):
        campaign_run.run_full(spec_config(generations=2), name="run")
        run_dir = campaign_run.base / "run"
        lines = [json.loads(line) for line in
                 (run_dir / "populations/gen_0000.jsonl")
                 .read_text().splitlines()]
        assert len(lines) == 8
        for entry in lines:
            assert entry["expression"]
            assert entry["fitness"] is not None
            assert entry["size"] >= 1

    def test_config_json_reconstructs_config(self, campaign_run):
        config = spec_config(generations=2)
        campaign_run.run_full(config, name="run")
        restored = ExperimentConfig.from_json_dict(
            json.loads((campaign_run.base / "run" / "config.json")
                       .read_text()))
        assert restored == config

    def test_fresh_start_into_used_dir_refused(self, campaign_run):
        run_dir = campaign_run.base / "run"
        campaign_run.run_full(spec_config(generations=2), name="run")
        with pytest.raises(FileExistsError):
            ExperimentRunner(spec_config(generations=2),
                             run_dir=run_dir).run()

    def test_resume_without_checkpoint_refused(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentRunner(spec_config(), run_dir=tmp_path / "empty") \
                .run(resume=True)

    def test_resume_without_run_dir_refused(self):
        with pytest.raises(ValueError):
            ExperimentRunner(spec_config()).run(resume=True)

    def test_resume_with_mismatched_config_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        assert ExperimentRunner(spec_config(), run_dir=run_dir,
                                stop_after_generation=0).run().interrupted
        other = spec_config(params=GPParams(population_size=8,
                                            generations=4, seed=1))
        with pytest.raises(ValueError):
            ExperimentRunner(other, run_dir=run_dir).run(resume=True)

    def test_resume_finished_run_rewrites_identical_result(
            self, campaign_run):
        run_dir = campaign_run.base / "run"
        first = campaign_run.run_full(spec_config(generations=2),
                                      name="run")
        ExperimentRunner.from_run_dir(run_dir).run(resume=True)
        assert (run_dir / "result.json").read_bytes() == first


class TestWithoutRunDir:
    def test_in_memory_run(self):
        memory = MemorySink()
        outcome = run_experiment(spec_config(generations=2),
                                 sinks=(memory,))
        assert outcome.payload["mode"] == "specialize"
        assert outcome.specialization.train_speedup >= 1.0 - 1e-9
        assert memory.of_type("generation")

    def test_matches_manual_specialize_pipeline(self):
        from repro.metaopt.harness import EvaluationHarness, case_study
        from repro.metaopt.specialize import (
            build_specialize_engine,
            finalize_specialization,
        )

        config = spec_config(generations=2)
        outcome = run_experiment(config)
        harness = EvaluationHarness(case_study("hyperblock"))
        engine = build_specialize_engine(harness.case, "codrle4",
                                         config.params, harness)
        manual = finalize_specialization(harness, "codrle4", engine.run())
        assert outcome.specialization.best_expression == \
            manual.best_expression
        assert outcome.specialization.train_speedup == \
            manual.train_speedup

    def test_matches_manual_generalize_pipeline(self):
        from repro.metaopt.generalize import (
            build_generalize_engine,
            finalize_generalization,
        )
        from repro.metaopt.harness import EvaluationHarness, case_study

        config = gen_config(generations=2)
        outcome = run_experiment(config)
        harness = EvaluationHarness(case_study("hyperblock"))
        engine = build_generalize_engine(
            harness.case, tuple(config.training_set), config.params,
            harness, subset_size=config.subset_size)
        manual = finalize_generalization(harness.case, harness,
                                         tuple(config.training_set),
                                         engine.run())
        assert outcome.generalization.best_expression == \
            manual.best_expression


class TestCheckpointFile:
    def test_atomic_round_trip(self, tmp_path):
        path = tmp_path / "checkpoint.pkl"
        save_checkpoint(path, {"case": "hyperblock"}, {"generation": 3})
        payload = load_checkpoint(path)
        assert payload["config"] == {"case": "hyperblock"}
        assert payload["engine"] == {"generation": 3}
        assert not path.with_name("checkpoint.pkl.tmp").exists()

    def test_version_check(self, tmp_path):
        import pickle

        path = tmp_path / "checkpoint.pkl"
        path.write_bytes(pickle.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_checkpoint(path)
