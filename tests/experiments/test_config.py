"""ExperimentConfig: validation and JSON round-trips."""

import pytest

from repro.experiments import ExperimentConfig
from repro.gp.engine import GPParams


def spec_config(**overrides):
    defaults = dict(mode="specialize", case="hyperblock",
                    benchmark="codrle4",
                    params=GPParams(population_size=8, generations=2))
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            spec_config(mode="optimize")

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            spec_config(case="vectorize")

    def test_specialize_requires_benchmark(self):
        with pytest.raises(ValueError):
            spec_config(benchmark=None)

    def test_generalize_requires_training_set(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="generalize", case="hyperblock")

    def test_processes_validated(self):
        with pytest.raises(ValueError):
            spec_config(processes=0)

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError):
            spec_config(checkpoint_every=0)

    def test_frozen(self):
        config = spec_config()
        with pytest.raises(AttributeError):
            config.case = "regalloc"

    def test_list_suites_normalized_to_tuples(self):
        config = ExperimentConfig(
            mode="generalize", case="hyperblock",
            training_set=["a", "b"], test_set=["c"])
        assert config.training_set == ("a", "b")
        assert config.test_set == ("c",)


class TestSerialization:
    def test_round_trip(self):
        config = ExperimentConfig(
            mode="generalize", case="prefetch",
            training_set=("a", "b"), test_set=("c",),
            params=GPParams(population_size=12, generations=5, seed=3),
            noise_stddev=0.01, processes=2, subset_size=1)
        data = config.to_json_dict()
        assert isinstance(data["params"], dict)
        assert data["training_set"] == ["a", "b"]
        restored = ExperimentConfig.from_json_dict(data)
        assert restored == config

    def test_json_dict_is_jsonable(self):
        import json

        json.dumps(spec_config().to_json_dict())

    def test_unknown_fields_rejected(self):
        data = spec_config().to_json_dict()
        data["shards"] = 4
        with pytest.raises(ValueError):
            ExperimentConfig.from_json_dict(data)
