"""Campaign-level acceptance for the three new case studies.

``inline`` and ``unroll`` evolve prepare-stage priority functions;
``flags`` runs the FOGA-style GA over ``CompilerOptions``.  All three
must behave exactly like the established cases at the experiments
layer: a short verified campaign completes with the champion at least
matching the seeded baseline (fitness 1.0 by construction), and a
killed run resumes byte-identically.

The flags case additionally carries explicit capability gates — it is
serial-only (workers exchange s-expression text) and its genome cannot
ride the tree-feature surrogate or the artifact store — and those
gates must fail loudly, not corrupt a campaign halfway through.
"""

import json

import pytest

from repro.experiments import ExperimentRunner

NEW_CASES = ("inline", "unroll", "flags")


class TestNewCaseCampaigns:
    @pytest.mark.parametrize("case", NEW_CASES)
    def test_verified_campaign_completes_at_or_above_baseline(
            self, campaign_run, case):
        """2 generations with the differential guard on: the champion
        is never worse than the seeded baseline heuristic."""
        config = campaign_run.config(case=case, generations=2,
                                     verify_outputs=True)
        result = json.loads(campaign_run.run_full(config, name=case))
        assert result["mode"] == "specialize"
        assert result["case"] == case
        assert result["train_speedup"] >= 1.0 - 1e-9
        assert result["best_expression"]
        assert result["history"][-1]["best_fitness"] >= 1.0 - 1e-9

    @pytest.mark.parametrize("case", NEW_CASES)
    def test_kill_resume_byte_identical(self, campaign_run, case):
        config = campaign_run.config(case=case, generations=3)
        full = campaign_run.run_full(config)
        resumed = campaign_run.run_killed_then_resumed(config,
                                                       stop_after=0)
        assert resumed == full

    def test_flags_champion_serializes_as_flags_line(self, campaign_run):
        config = campaign_run.config(case="flags", generations=2)
        result = json.loads(campaign_run.run_full(config))
        assert result["best_expression"].startswith("(flags ")
        # Population snapshots carry the same textual form.
        lines = [json.loads(line) for line in
                 (campaign_run.base / "full" / "populations" /
                  "gen_0000.jsonl").read_text().splitlines()]
        assert all(entry["expression"].startswith("(flags ")
                   for entry in lines)


class TestPromotedSuiteCampaigns:
    def test_generalize_over_promoted_split(self, campaign_run):
        """The widened suite plugs straight into the existing
        generalize path: train on the promoted train partition,
        cross-validate on the promoted novel partition."""
        from repro.suite import PROMOTED_NOVEL_SET, PROMOTED_TRAINING_SET

        config = campaign_run.config(
            benchmark=None, mode="generalize", generations=2,
            population=6, training_set=PROMOTED_TRAINING_SET[:2],
            test_set=PROMOTED_NOVEL_SET[:1], subset_size=1)
        result = json.loads(campaign_run.run_full(config))
        assert result["average_train_speedup"] >= 1.0 - 1e-9
        trained = {score["benchmark"] for score in result["training"]}
        assert trained == set(PROMOTED_TRAINING_SET[:2])
        validated = {score["benchmark"]
                     for score in result["cross_validation"]["scores"]}
        assert validated == set(PROMOTED_NOVEL_SET[:1])


class TestFlagsGates:
    """The flags case refuses backends its genome cannot ride."""

    def test_rejects_process_pool(self, campaign_run):
        config = campaign_run.config(case="flags", generations=2,
                                     processes=2)
        with pytest.raises(ValueError, match="serial"):
            campaign_run.run_full(config)

    def test_rejects_fleet(self, campaign_run):
        config = campaign_run.config(case="flags", generations=2)
        with pytest.raises(ValueError, match="serial"):
            ExperimentRunner(config, run_dir=campaign_run.base / "run",
                             fleet="local:2").run()

    def test_rejects_surrogate(self, campaign_run):
        config = campaign_run.config(case="flags", generations=2)
        with pytest.raises(ValueError, match="surrogate"):
            ExperimentRunner(config, run_dir=campaign_run.base / "run",
                             surrogate=True).run()

    def test_rejects_publish(self, campaign_run):
        config = campaign_run.config(case="flags", generations=2)
        with pytest.raises(ValueError, match="publish"):
            ExperimentRunner(config, run_dir=campaign_run.base / "run",
                             publish_dir=campaign_run.base / "art").run()
