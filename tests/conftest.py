"""Shared pytest configuration for the whole suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files (tests/golden/*.json) with the "
             "current behaviour instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """True when the run should rewrite golden files."""
    return request.config.getoption("--update-goldens")
