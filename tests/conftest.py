"""Shared pytest configuration for the whole suite."""

from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files (tests/golden/*.json) with the "
             "current behaviour instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """True when the run should rewrite golden files."""
    return request.config.getoption("--update-goldens")


class CampaignDriver:
    """The shared tempdir campaign runner of the experiments, fleet,
    and surrogate suites (formerly three copy-pasted helpers).

    ``runner_kwargs`` (``surrogate=True``, ``fleet="local:2"``, ...)
    pass straight through to :class:`repro.experiments.
    ExperimentRunner` on the initial run *and* on the resume leg, so a
    killed run always resumes under the same evaluation backend.
    """

    def __init__(self, base: Path) -> None:
        self.base = Path(base)

    def config(self, case="hyperblock", benchmark="codrle4",
               generations=4, seed=0, population=8, **overrides):
        from repro.experiments import ExperimentConfig
        from repro.gp.engine import GPParams

        defaults = dict(
            mode="specialize", case=case, benchmark=benchmark,
            params=GPParams(population_size=population,
                            generations=generations, seed=seed))
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    def run_full(self, config, name="full", **runner_kwargs) -> bytes:
        """Run ``config`` to completion; returns result.json's bytes."""
        from repro.experiments import ExperimentRunner

        run_dir = self.base / name
        ExperimentRunner(config, run_dir=run_dir, **runner_kwargs).run()
        return (run_dir / "result.json").read_bytes()

    def run_killed_then_resumed(self, config, stop_after, name="killed",
                                **runner_kwargs) -> bytes:
        """Stop after generation ``stop_after`` (the deterministic
        SIGKILL stand-in), then resume to completion; returns
        result.json's bytes."""
        from repro.experiments import ExperimentRunner

        run_dir = self.base / name
        outcome = ExperimentRunner(
            config, run_dir=run_dir, stop_after_generation=stop_after,
            **runner_kwargs).run()
        assert outcome.interrupted
        assert outcome.next_generation == stop_after + 1
        assert not (run_dir / "result.json").exists()
        ExperimentRunner.from_run_dir(
            run_dir, **runner_kwargs).run(resume=True)
        return (run_dir / "result.json").read_bytes()


@pytest.fixture
def campaign_run(tmp_path):
    """A :class:`CampaignDriver` rooted in this test's tmp dir."""
    return CampaignDriver(tmp_path)
