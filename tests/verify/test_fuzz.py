"""Fuzzer: determinism, well-definedness, campaign driver, minimizer."""

from repro.frontend import compile_source
from repro.machine import sim as sim_mod
from repro.verify.differential import run_differential
from repro.verify.fuzz import case_seed, fuzz, generate_program, minimize


class TestGenerator:
    def test_deterministic_per_seed(self):
        left = generate_program(42)
        right = generate_program(42)
        assert left.source == right.source
        assert left.inputs == right.inputs

    def test_distinct_seeds_distinct_programs(self):
        assert generate_program(1).source != generate_program(2).source

    def test_generated_programs_compile(self):
        for seed in range(10):
            program = generate_program(seed)
            module = compile_source(program.source, f"fuzz-{seed}")
            assert "main" in module.functions

    def test_case_seed_stable(self):
        # per-case seeds must not depend on the campaign size
        assert case_seed(5, 3) == case_seed(5, 3)
        assert case_seed(5, 3) != case_seed(5, 4)
        assert case_seed(5, 3) != case_seed(6, 3)


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = fuzz(8, seed=0)
        assert report.ok
        assert report.passed == 8
        assert report.failures == []
        assert report.generator_errors == []

    def test_report_json_schema(self):
        report = fuzz(2, seed=1)
        payload = report.to_json_dict()
        assert set(payload) == {"count", "seed", "passed", "agreed_faults",
                                "failures", "generator_errors"}

    def test_campaign_catches_injected_miscompile(self, monkeypatch):
        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = list(result.outputs) + [12345]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        report = fuzz(2, seed=0, shrink=False)
        assert not report.ok
        assert len(report.failures) == 2
        failure = report.failures[0]
        assert failure.result.first is not None
        assert failure.minimized_source == failure.source  # shrink off


class TestMinimizer:
    def test_minimizer_shrinks_injected_failure(self, monkeypatch):
        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = list(result.outputs) + [12345]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        program = generate_program(case_seed(0, 0))
        before = program.source
        shrunk, removed = minimize(program, max_steps=200_000)
        # every deletable statement can go: the injected bug fires on
        # any program, so the minimizer should reach a skeleton
        assert removed > 0
        assert len(shrunk.source) < len(before)
        result = run_differential(shrunk.source, shrunk.inputs,
                                  max_steps=200_000)
        assert not result.equivalent  # still reproduces

    def test_minimizer_keeps_divergence_free_program_intact(self):
        program = generate_program(case_seed(0, 1))
        before = program.source
        shrunk, removed = minimize(program, max_steps=200_000)
        # no divergence -> first deletion never "still fails" -> no-op
        assert removed == 0
        assert shrunk.source == before
