"""Differential oracle: observable equality, divergence reporting."""

import math

from repro.machine import sim as sim_mod
from repro.passes.pipeline import CompilerOptions
from repro.verify.differential import (
    Divergence,
    compare_executions,
    run_differential,
    values_equal,
)

SOURCE = """
int data[8];
float scale[4];
void main() {
  int i;
  int acc = 0;
  float facc = 0.0;
  for (i = 0; i < 8; i = i + 1) { acc = acc + data[i]; }
  for (i = 0; i < 4; i = i + 1) { facc = facc + scale[i] * acc; }
  data[0] = acc;
  out(acc);
  out(facc);
}
"""

INPUTS = {"data": [3, -1, 4, -1, 5, -9, 2, 6],
          "scale": [0.5, -0.25, 1.5, 2.0]}

FAULTING = """
int n;
void main() {
  out(100 / n);
}
"""


class TestValuesEqual:
    def test_ints(self):
        assert values_equal(3, 3)
        assert not values_equal(3, 4)

    def test_int_float_distinct(self):
        assert not values_equal(1, 1.0)

    def test_nan_equals_nan(self):
        assert values_equal(float("nan"), float("nan"))
        assert not values_equal(float("nan"), 0.0)

    def test_signed_zero_distinct(self):
        assert not values_equal(0.0, -0.0)
        assert values_equal(-0.0, -0.0)

    def test_inf(self):
        assert values_equal(math.inf, math.inf)
        assert not values_equal(math.inf, -math.inf)


class TestCompareExecutions:
    def test_both_faults_agree(self):
        assert compare_executions(None, None, {}, {},
                                  interp_fault="div0",
                                  sim_fault="div0 too") == []

    def test_one_sided_fault_diverges(self):
        divergences = compare_executions(None, None, {}, {},
                                         interp_fault="div0",
                                         sim_fault=None)
        assert divergences[0].channel == "fault"


class TestRunDifferential:
    def test_clean_program_equivalent(self):
        result = run_differential(SOURCE, INPUTS)
        assert result.equivalent
        assert result.divergences == []
        assert result.options_summary["machine"] == "epic-default"

    def test_verify_ir_composes(self):
        options = CompilerOptions(verify_ir=True)
        result = run_differential(SOURCE, INPUTS, options)
        assert result.equivalent

    def test_agreed_fault_is_equivalent(self):
        result = run_differential(FAULTING, {"n": [0]})
        assert result.equivalent
        assert result.interp_fault is not None
        assert result.sim_fault is not None

    def test_injected_miscompile_reported(self, monkeypatch):
        original = sim_mod.Simulator.run

        def corrupted(self, entry="main"):
            result = original(self, entry)
            result.outputs = [value + 1 if isinstance(value, int) else value
                              for value in result.outputs]
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)
        result = run_differential(SOURCE, INPUTS)
        assert not result.equivalent
        first = result.first
        assert first is not None and first.channel == "out"
        payload = result.to_json_dict()
        assert payload["equivalent"] is False
        assert payload["divergences"][0]["channel"] == "out"
        assert payload["options"]["machine"] == "epic-default"

    def test_global_channel_names_symbol(self, monkeypatch):
        original = sim_mod.Simulator.run

        def corrupt_memory(self, entry="main"):
            result = original(self, entry)
            base = self._layout["data"]
            self.memory[base] = self.memory.get(base, 0) + 7
            return result

        monkeypatch.setattr(sim_mod.Simulator, "run", corrupt_memory)
        result = run_differential(SOURCE, INPUTS)
        assert not result.equivalent
        channels = {d.channel for d in result.divergences}
        assert "global" in channels
        diverged = next(d for d in result.divergences
                        if d.channel == "global")
        assert diverged.symbol == "data"
        assert diverged.index == 0


class TestDivergenceRendering:
    def test_str_and_json(self):
        divergence = Divergence(channel="global", detail="differs",
                                symbol="data", index=3,
                                interp_value=1, sim_value=2)
        text = str(divergence)
        assert "global data[3]" in text
        payload = divergence.to_json_dict()
        assert payload["symbol"] == "data"
        assert payload["index"] == 3

    def test_json_encodes_nonfinite_floats(self):
        divergence = Divergence(channel="out", detail="nan",
                                interp_value=float("nan"),
                                sim_value=float("-inf"))
        payload = divergence.to_json_dict()
        assert payload["interp_value"] == "nan"
        assert payload["sim_value"] == "-inf"
