"""Structural IR verifier: clean pipelines pass, broken IR is caught."""

import pytest

from repro.frontend import compile_source
from repro.ir.instr import Instr, Opcode
from repro.ir.values import INT, VReg
from repro.machine.descr import DEFAULT_EPIC, REGALLOC_MACHINE
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare
from repro.verify.ir_verifier import (
    IRVerifyError,
    verify_function,
    verify_module,
    verify_scheduled,
)

SOURCE = """
int data[16];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 4) { acc = acc + data[i]; }
    else { acc = acc - 1; }
  }
  out(acc);
}
"""

INPUTS = {"data": list(range(16)), "n": [12]}


def fresh_module():
    return compile_source(SOURCE, "verifier-test")


class TestCleanPipeline:
    def test_verify_ir_flag_runs_every_stage(self):
        options = CompilerOptions(verify_ir=True)
        prepared = prepare(fresh_module(), INPUTS, options)
        scheduled, _report = compile_backend(prepared)
        assert scheduled.functions  # compiled without raising

    def test_verify_ir_with_prefetch_and_small_regfile(self):
        options = CompilerOptions(machine=REGALLOC_MACHINE, verify_ir=True)
        prepared = prepare(fresh_module(), INPUTS, options)
        compile_backend(prepared)

    def test_fresh_frontend_module_is_clean(self):
        module = fresh_module()
        for function in module.functions.values():
            assert verify_function(function, module) == []


class TestBrokenIR:
    def test_missing_terminator(self):
        module = fresh_module()
        function = module.functions["main"]
        entry = function.blocks[function.block_order[0]]
        entry.instrs.pop()  # drop the terminator
        issues = verify_function(function, module)
        assert any("terminat" in issue.message for issue in issues)

    def test_branch_to_unknown_block(self):
        module = fresh_module()
        function = module.functions["main"]
        for label in function.block_order:
            terminator = function.blocks[label].instrs[-1]
            if terminator.targets:
                terminator.targets = ("nowhere",) + terminator.targets[1:]
                break
        issues = verify_function(function, module)
        assert any("nowhere" in issue.message for issue in issues)

    def test_use_of_undefined_register(self):
        module = fresh_module()
        function = module.functions["main"]
        entry = function.blocks[function.block_order[0]]
        ghost = VReg(uid=987654, vtype=INT, name="ghost")
        defined = next(
            instr.dest for instr in entry.instrs
            if instr.dest is not None and instr.dest.vtype is INT
        )
        entry.instrs.insert(
            len(entry.instrs) - 1,
            Instr(Opcode.MOV, dest=defined, srcs=(ghost,)),
        )
        issues = verify_function(function, module)
        assert any("ghost" in issue.message or "defin" in issue.message
                   for issue in issues)

    def test_verify_module_raises_with_stage(self):
        module = fresh_module()
        function = module.functions["main"]
        function.blocks[function.block_order[0]].instrs.pop()
        with pytest.raises(IRVerifyError) as excinfo:
            verify_module(module, stage="cleanup")
        assert excinfo.value.stage == "cleanup"
        assert excinfo.value.issues

    def test_pipeline_flag_surfaces_corruption(self, monkeypatch):
        """A pass that corrupts the IR is caught at the next checkpoint."""
        from repro.passes import pipeline as pipeline_mod

        def corrupting_cleanup(module):
            for function in module.functions.values():
                function.blocks[function.block_order[0]].instrs.pop()

        monkeypatch.setattr(pipeline_mod, "cleanup_module",
                            corrupting_cleanup)
        options = CompilerOptions(verify_ir=True, unroll_factor=1)
        with pytest.raises(IRVerifyError) as excinfo:
            prepare(fresh_module(), INPUTS, options)
        assert excinfo.value.stage == "cleanup"


class TestAllocatedChecks:
    def _scheduled(self, machine=DEFAULT_EPIC):
        options = CompilerOptions(machine=machine)
        prepared = prepare(fresh_module(), INPUTS, options)
        return compile_backend(prepared)

    def test_surviving_vreg_after_regalloc_flagged(self):
        options = CompilerOptions()
        prepared = prepare(fresh_module(), INPUTS, options)
        module = prepared.module.clone()
        # pretend regalloc ran but left the module unallocated
        issues = []
        for function in module.functions.values():
            issues.extend(verify_function(function, module, allocated=True,
                                          machine=DEFAULT_EPIC))
        assert any("VReg" in issue.message or "virtual" in issue.message
                   for issue in issues)

    def test_scheduled_module_passes(self):
        scheduled, _report = self._scheduled()
        verify_scheduled(scheduled, DEFAULT_EPIC)  # must not raise

    def test_overfull_bundle_flagged(self):
        scheduled, _report = self._scheduled()
        function = next(iter(scheduled.functions.values()))
        block = function.blocks[function.block_order[0]]
        writer = next(
            instr
            for bundle in block.bundles for instr in bundle
            if instr.dest is not None
        )
        block.bundles[0].instrs[:0] = [
            Instr(Opcode.ADD, dest=writer.dest,
                  srcs=(writer.dest, writer.dest))
            for _ in range(DEFAULT_EPIC.issue_width + 1)
        ]
        with pytest.raises(IRVerifyError):
            verify_scheduled(scheduled, DEFAULT_EPIC)
