"""Auto-collected differential regression corpus (tests/corpus/).

Every ``NAME.mc`` + ``NAME.inputs.json`` pair under ``tests/corpus/``
is run through the differential oracle under two configurations —
default EPIC and Itanium + prefetch — with the per-stage IR verifier
on.  A new fuzzer-found reproducer dropped into the directory is picked
up automatically; see ``tests/corpus/README.md``.
"""

import json
from pathlib import Path

import pytest

from repro.machine.descr import ITANIUM_MACHINE
from repro.passes.pipeline import CompilerOptions
from repro.verify.differential import run_differential

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

CONFIGS = {
    "default": CompilerOptions(verify_ir=True),
    "itanium-prefetch": CompilerOptions(machine=ITANIUM_MACHINE,
                                        prefetch=True, verify_ir=True),
}


def corpus_entries():
    entries = sorted(CORPUS_DIR.glob("*.mc"))
    assert entries, f"no corpus programs under {CORPUS_DIR}"
    return entries


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize(
    "program_path", corpus_entries(), ids=lambda path: path.stem)
def test_corpus_program_is_equivalent(program_path, config_name):
    inputs_path = program_path.with_suffix("").with_suffix(".inputs.json")
    inputs = (json.loads(inputs_path.read_text())
              if inputs_path.exists() else {})
    result = run_differential(
        program_path.read_text(), inputs, CONFIGS[config_name],
        name=program_path.stem,
    )
    assert result.equivalent, (
        f"{program_path.stem} under {config_name}: {result.first}"
    )


def test_every_program_has_inputs_file():
    for program_path in corpus_entries():
        inputs_path = program_path.with_suffix("").with_suffix(
            ".inputs.json")
        assert inputs_path.exists(), (
            f"{program_path.name} is missing {inputs_path.name} "
            "(use {} for no inputs)"
        )
