"""Property tests pinning MiniC's 64-bit integer semantics.

The interpreter and simulator share one scalar ALU
(:func:`repro.ir.interp.apply_scalar_op`), so these properties pin the
semantics both engines execute: two's-complement wrapping, C-style
truncating division/remainder (including INT_MIN and negative
operands), and 6-bit shift masking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import interp as interp_mod
from repro.ir.instr import Opcode
from repro.ir.interp import InterpError, apply_scalar_op, int_div, int_rem, wrap_int
from repro.machine import sim as sim_mod

INT_MIN = -(1 << 63)
INT_MAX = (1 << 63) - 1

any_int = st.integers(min_value=-(1 << 70), max_value=1 << 70)
int64 = st.integers(min_value=INT_MIN, max_value=INT_MAX)
nonzero64 = int64.filter(lambda value: value != 0)


def test_simulator_shares_the_interpreter_alu():
    """The two engines must not be able to drift: the simulator imports
    the interpreter's scalar helpers rather than reimplementing them."""
    assert sim_mod.wrap_int is interp_mod.wrap_int
    assert sim_mod.int_div is interp_mod.int_div
    assert sim_mod.int_rem is interp_mod.int_rem


class TestWrapInt:
    @given(any_int)
    @settings(max_examples=200, deadline=None)
    def test_range_and_congruence(self, value):
        wrapped = wrap_int(value)
        assert INT_MIN <= wrapped <= INT_MAX
        assert (wrapped - value) % (1 << 64) == 0

    @given(any_int)
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, value):
        assert wrap_int(wrap_int(value)) == wrap_int(value)

    def test_boundaries(self):
        assert wrap_int(INT_MAX) == INT_MAX
        assert wrap_int(INT_MAX + 1) == INT_MIN
        assert wrap_int(INT_MIN - 1) == INT_MAX
        assert wrap_int(1 << 64) == 0


class TestTruncatingDivision:
    @given(int64, nonzero64)
    @settings(max_examples=300, deadline=None)
    def test_euclid_identity(self, numerator, denominator):
        quotient = int_div(numerator, denominator)
        remainder = int_rem(numerator, denominator)
        assert numerator == quotient * denominator + remainder

    @given(int64, nonzero64)
    @settings(max_examples=300, deadline=None)
    def test_remainder_sign_and_magnitude(self, numerator, denominator):
        remainder = int_rem(numerator, denominator)
        assert abs(remainder) < abs(denominator)
        if remainder != 0:
            assert (remainder < 0) == (numerator < 0)

    @given(int64, nonzero64)
    @settings(max_examples=300, deadline=None)
    def test_truncates_toward_zero(self, numerator, denominator):
        quotient = int_div(numerator, denominator)
        exact = abs(numerator) // abs(denominator)
        assert abs(quotient) == exact

    def test_negative_operand_cases(self):
        assert int_div(7, -2) == -3
        assert int_div(-7, 2) == -3
        assert int_div(-7, -2) == 3
        assert int_rem(7, -2) == 1
        assert int_rem(-7, 2) == -1
        assert int_rem(-7, -2) == -1

    def test_int_min_overflow_wraps_through_alu(self):
        # INT_MIN / -1 overflows in C; the shared ALU wraps it back to
        # INT_MIN, making it defined (and identical) in both engines.
        assert int_div(INT_MIN, -1) == 1 << 63  # raw helper overflows
        assert apply_scalar_op(Opcode.DIV, None, (INT_MIN, -1)) == INT_MIN
        assert apply_scalar_op(Opcode.REM, None, (INT_MIN, -1)) == 0


class TestScalarALU:
    @given(int64, int64)
    @settings(max_examples=200, deadline=None)
    def test_add_sub_mul_wrap(self, left, right):
        assert apply_scalar_op(Opcode.ADD, None, (left, right)) == \
            wrap_int(left + right)
        assert apply_scalar_op(Opcode.SUB, None, (left, right)) == \
            wrap_int(left - right)
        assert apply_scalar_op(Opcode.MUL, None, (left, right)) == \
            wrap_int(left * right)

    @given(int64, nonzero64)
    @settings(max_examples=200, deadline=None)
    def test_div_rem_match_helpers(self, numerator, denominator):
        assert apply_scalar_op(Opcode.DIV, None,
                               (numerator, denominator)) == \
            wrap_int(int_div(numerator, denominator))
        assert apply_scalar_op(Opcode.REM, None,
                               (numerator, denominator)) == \
            wrap_int(int_rem(numerator, denominator))

    @given(int64, st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=200, deadline=None)
    def test_shifts_mask_to_six_bits(self, value, amount):
        assert apply_scalar_op(Opcode.SHL, None, (value, amount)) == \
            wrap_int(value << (amount & 63))
        assert apply_scalar_op(Opcode.SHR, None, (value, amount)) == \
            wrap_int(value >> (amount & 63))

    @given(int64)
    @settings(max_examples=50, deadline=None)
    def test_division_by_zero_faults(self, numerator):
        with pytest.raises(InterpError):
            apply_scalar_op(Opcode.DIV, None, (numerator, 0))
        with pytest.raises(InterpError):
            apply_scalar_op(Opcode.REM, None, (numerator, 0))
