"""Mining training pairs out of the persistent fitness cache: label
computation against the baseline record, group hygiene, and the
too-few-pairs cold-start path."""

import random

from repro.gp.generate import TreeGenerator
from repro.gp.parse import unparse
from repro.machine.sim import SimResult
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.fitness_cache import FitnessCache
from repro.metaopt.psets import PSETS
from repro.surrogate.train import mine_pairs, train_from_cache

CASE = "regalloc"
BASELINE_TEXT = unparse(BASELINE_TREES[CASE]())


def result(cycles):
    return SimResult(cycles=cycles, return_value=None, outputs=[],
                     dynamic_ops=1, bundles=1)


def meta(expression, benchmark="codrle4", case=CASE, dataset="train",
         noise_stddev=0.0, verified=True):
    return dict(expression=expression, case=case, benchmark=benchmark,
                dataset=dataset, noise_stddev=noise_stddev,
                verified=verified)


def expressions(count, seed=0):
    generator = TreeGenerator(PSETS[CASE], rng=random.Random(seed))
    texts, seen = [], {BASELINE_TEXT}
    while len(texts) < count:
        text = unparse(generator.grow(4))
        if text not in seen:
            seen.add(text)
            texts.append(text)
    return texts


def fill_cache(tmp_path, candidates=10, baseline_cycles=1000):
    cache = FitnessCache(tmp_path)
    cache.put(f"{0:064x}", result(baseline_cycles),
              meta=meta(BASELINE_TEXT))
    cycles_by_text = {}
    for i, text in enumerate(expressions(candidates), start=1):
        cycles = 800 + 40 * i
        cycles_by_text[text] = cycles
        cache.put(f"{i:064x}", result(cycles), meta=meta(text))
    return cache, cycles_by_text, baseline_cycles


class TestMinePairs:
    def test_labels_are_speedups_against_the_baseline(self, tmp_path):
        cache, cycles_by_text, baseline_cycles = fill_cache(tmp_path)
        pairs, report = mine_pairs(cache, CASE)
        labels = {text: label for text, _, label in pairs}
        assert labels[BASELINE_TEXT] == 1.0
        for text, cycles in cycles_by_text.items():
            assert labels[text] == baseline_cycles / cycles
        assert report.usable == len(cycles_by_text) + 1
        assert report.benchmarks == ["codrle4"]

    def test_group_without_baseline_contributes_nothing(self, tmp_path):
        cache = FitnessCache(tmp_path)
        for i, text in enumerate(expressions(3)):
            cache.put(f"{i:064x}", result(900), meta=meta(text))
        pairs, report = mine_pairs(cache, CASE)
        assert pairs == []
        assert report.skipped_no_baseline == 3

    def test_other_cases_and_meta_less_records_skipped(self, tmp_path):
        cache, _, _ = fill_cache(tmp_path, candidates=2)
        cache.put("a" * 64, result(700))  # no meta
        cache.put("b" * 64, result(700),
                  meta=meta("(add exec_ratio 1.0)", case="hyperblock"))
        pairs, report = mine_pairs(cache, CASE)
        assert report.skipped_no_meta == 1
        assert report.skipped_other_case == 1
        assert len(pairs) == 3  # baseline + 2 candidates

    def test_groups_keyed_by_noise_and_dataset(self, tmp_path):
        """A baseline measured at one noise level must not become the
        denominator for another group's records."""
        cache = FitnessCache(tmp_path)
        cache.put("0" * 64, result(1000), meta=meta(BASELINE_TEXT))
        text = expressions(1)[0]
        cache.put("1" * 64, result(500),
                  meta=meta(text, noise_stddev=0.5))
        pairs, report = mine_pairs(cache, CASE)
        assert [p[0] for p in pairs] == [BASELINE_TEXT]
        assert report.skipped_no_baseline == 1

    def test_report_serializes(self, tmp_path):
        cache, _, _ = fill_cache(tmp_path, candidates=2)
        _, report = mine_pairs(cache, CASE)
        payload = report.to_json_dict()
        assert payload["scanned"] == 3
        assert payload["usable"] == 3
        assert payload["benchmarks"] == ["codrle4"]


class TestTrainFromCache:
    def test_trains_when_enough_pairs(self, tmp_path):
        cache, _, _ = fill_cache(tmp_path, candidates=10)
        model, report = train_from_cache(cache, CASE, seed=4)
        assert model is not None and model.trained
        assert model.seed == 4
        assert report.usable == 11

    def test_cold_cache_returns_none(self, tmp_path):
        cache, _, _ = fill_cache(tmp_path, candidates=3)
        model, report = train_from_cache(cache, CASE)
        assert model is None
        assert report.usable == 4

    def test_training_is_deterministic(self, tmp_path):
        cache, _, _ = fill_cache(tmp_path, candidates=12)
        first, _ = train_from_cache(cache, CASE, seed=1)
        second, _ = train_from_cache(cache, CASE, seed=1)
        assert first.to_json() == second.to_json()
