"""Runner integration for ``--surrogate``: kill+resume byte-identity,
warm-cache training at startup, surrogate state beside the checkpoint,
and the schema-4 telemetry event.

Campaign execution goes through the shared ``campaign_run`` fixture
(tests/conftest.py) with ``surrogate=True`` runner kwargs.
"""

import json

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    MemorySink,
    run_experiment,
)
from repro.gp.engine import GPParams

#: The runner switches every campaign in this module rides.
SURROGATE_KWARGS = dict(surrogate=True, surrogate_top_k=2)


def config(generations=4, fitness_cache_dir=None, seed=0):
    return ExperimentConfig(
        mode="specialize", case="hyperblock", benchmark="codrle4",
        params=GPParams(population_size=8, generations=generations,
                        seed=seed),
        fitness_cache_dir=fitness_cache_dir)


class TestResumeByteIdentity:
    def test_cold_cache_resume_matches_full_run(self, campaign_run):
        # Separate cache dirs per run: a shared cache would hand the
        # resumed run a bigger training corpus than the full run saw.
        # The cache path rides result.json's embedded config, so this
        # comparison drops it and checks everything else.
        base = campaign_run.base
        full = json.loads(campaign_run.run_full(
            config(fitness_cache_dir=str(base / "cache_a")),
            **SURROGATE_KWARGS))
        resumed = json.loads(campaign_run.run_killed_then_resumed(
            config(fitness_cache_dir=str(base / "cache_b")),
            stop_after=1, **SURROGATE_KWARGS))
        assert (base / "killed" / "surrogate.json").exists()
        full.pop("config"), resumed.pop("config")
        assert resumed == full

    def test_no_cache_resume_byte_identical(self, campaign_run):
        full = campaign_run.run_full(config(), **SURROGATE_KWARGS)
        resumed = campaign_run.run_killed_then_resumed(
            config(), stop_after=0, **SURROGATE_KWARGS)
        assert (campaign_run.base / "killed" / "surrogate.json").exists()
        assert resumed == full

    def test_surrogate_state_rides_the_checkpoint(self, campaign_run):
        campaign_run.run_full(config(generations=2), name="run",
                              **SURROGATE_KWARGS)
        state = json.loads(
            (campaign_run.base / "run" / "surrogate.json").read_text())
        assert state["version"] == 1
        assert state["case"] == "hyperblock"
        assert state["top_k"] == 2
        assert state["pairs"]


class TestWarmCacheTraining:
    def test_exact_campaign_trains_the_surrogate(self, campaign_run):
        cache_dir = str(campaign_run.base / "cache")
        # Exact campaign populates the cache with labeled records...
        run_experiment(config(generations=3,
                              fitness_cache_dir=cache_dir))
        # ...so the surrogate campaign starts with a trained model.
        campaign_run.run_full(
            config(generations=3, fitness_cache_dir=cache_dir),
            name="run", **SURROGATE_KWARGS)
        state = json.loads(
            (campaign_run.base / "run" / "surrogate.json").read_text())
        assert state["model"] is not None
        assert state["model"]["training_pairs"] >= 8


class TestTelemetry:
    def test_surrogate_events_emitted_under_metrics(self, tmp_path):
        sink = MemorySink()
        ExperimentRunner(config(generations=2),
                         run_dir=tmp_path / "run", surrogate=True,
                         surrogate_top_k=2, collect_metrics=True,
                         sinks=(sink,)).run()
        assert sink.of_type("run_started")[0]["schema"] == 4
        events = sink.of_type("surrogate")
        assert len(events) == 2
        for event in events:
            assert set(event) == {"event", "generation", "sims_saved",
                                  "rank_corr", "refits", "promotions"}

    def test_no_surrogate_events_without_metrics(self, tmp_path):
        sink = MemorySink()
        ExperimentRunner(config(generations=2),
                         run_dir=tmp_path / "run", surrogate=True,
                         surrogate_top_k=2, sinks=(sink,)).run()
        assert sink.of_type("surrogate") == []

    def test_cold_start_matches_exact_run(self, tmp_path):
        """Before the first fit every evaluation is exact, so a short
        cold-start surrogate campaign reproduces the exact campaign's
        result byte for byte."""
        ExperimentRunner(config(generations=2),
                         run_dir=tmp_path / "plain").run()
        ExperimentRunner(config(generations=2), run_dir=tmp_path / "sur",
                         surrogate=True, surrogate_top_k=2).run()
        assert (tmp_path / "plain/result.json").read_bytes() == \
            (tmp_path / "sur/result.json").read_bytes()
