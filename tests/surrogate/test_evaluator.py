"""SurrogateEvaluator behavior against a deterministic fake inner
evaluator: cold start, top-K prescreening, champion promotion, stats,
and state round-tripping — no simulator involved."""

import json
import random

import pytest

from repro.gp.generate import TreeGenerator
from repro.gp.parse import unparse
from repro.metaopt.psets import PSETS
from repro.surrogate.evaluator import SurrogateEvaluator, spearman
from repro.surrogate.features import FeatureExtractor
from repro.surrogate.model import SurrogateModel

CASE = "regalloc"
PSET = PSETS[CASE]


class FakeInner:
    """Exact evaluator stand-in: fitness is a pure function of the
    expression text, so every call is reproducible and countable."""

    def __init__(self, offset=0.0):
        self.offset = offset
        self.jobs = 0
        self.batches = []
        self.closed = False

    def _value(self, tree, benchmark):
        digest = sum(ord(c) for c in unparse(tree) + benchmark)
        return self.offset + (digest % 100) / 100.0

    def __call__(self, tree, benchmark):
        self.jobs += 1
        return self._value(tree, benchmark)

    def evaluate_batch(self, jobs):
        jobs = list(jobs)
        self.jobs += len(jobs)
        self.batches.append(len(jobs))
        return [self._value(tree, benchmark) for tree, benchmark in jobs]

    def stats(self):
        return {"inner_jobs": self.jobs}

    def close(self):
        self.closed = True


def distinct_trees(count, seed=0):
    generator = TreeGenerator(PSET, rng=random.Random(seed))
    trees, seen = [], set()
    attempt = 0
    while len(trees) < count:
        tree = generator.grow(3 + attempt % 3)
        attempt += 1
        key = tree.structural_key()
        if key not in seen:
            seen.add(key)
            trees.append(tree)
    return trees


def constant_model(value=10.0, pairs=16):
    """A trained model predicting ``value`` for every tree."""
    extractor = FeatureExtractor(PSET)
    rows = [(extractor.vector(tree), "codrle4", value)
            for tree in distinct_trees(pairs, seed=9)]
    model = SurrogateModel(feature_names=extractor.names)
    model.fit(rows)
    assert abs(model.predict(rows[0][0], "codrle4") - value) < 1e-6
    return model


class TestColdStart:
    def test_all_exact_until_first_fit(self):
        inner = FakeInner()
        ev = SurrogateEvaluator(inner, CASE, min_fit_pairs=16)
        trees = distinct_trees(12)
        values = ev.evaluate_batch([(t, "codrle4") for t in trees])
        assert values == [inner._value(t, "codrle4") for t in trees]
        assert ev.model is None  # 12 pairs < 16
        ev.evaluate_batch([(t, "decodrle4") for t in trees])
        assert ev.model is not None and ev.model.trained
        assert ev.predicted_jobs == 0
        assert inner.jobs == 24

    def test_single_calls_always_exact(self):
        inner = FakeInner()
        ev = SurrogateEvaluator(inner, CASE,
                                model=constant_model(10.0))
        tree = distinct_trees(1)[0]
        assert ev(tree, "codrle4") == inner._value(tree, "codrle4")
        assert ev.predicted_jobs == 0


class TestPrescreening:
    def test_tail_scored_from_model(self):
        # Predictions (1.0) sit below every exact value (offset puts
        # them in [5, 6)), so no tail group can promote past the best
        # exact score — the tail genuinely stays model-scored.
        inner = FakeInner(offset=5.0)
        ev = SurrogateEvaluator(inner, CASE, model=constant_model(1.0),
                                top_k=3, epsilon=0.0)
        trees = distinct_trees(10)
        values = ev.evaluate_batch([(t, "codrle4") for t in trees])
        assert ev.exact_jobs == 3
        assert ev.predicted_jobs == 7
        assert inner.jobs == 3
        exact_count = sum(
            1 for t, v in zip(trees, values)
            if v == inner._value(t, "codrle4"))
        assert exact_count >= 3
        predicted = [v for t, v in zip(trees, values)
                     if v != inner._value(t, "codrle4")]
        for value in predicted:
            assert abs(value - 1.0) < 1e-6

    def test_promotion_simulates_overestimated_tail(self):
        # Predictions (10.0) tower over every exact value (<1), so the
        # promotion fixpoint must simulate the entire tail — the model
        # can never crown an unverified champion.
        inner = FakeInner()
        ev = SurrogateEvaluator(inner, CASE, model=constant_model(10.0),
                                top_k=2, epsilon=0.0)
        trees = distinct_trees(8)
        values = ev.evaluate_batch([(t, "codrle4") for t in trees])
        assert ev.promotions == 6
        assert ev.predicted_jobs == 0
        assert values == [inner._value(t, "codrle4") for t in trees]

    def test_epsilon_explores_the_tail(self):
        inner = FakeInner(offset=5.0)
        ev = SurrogateEvaluator(inner, CASE, model=constant_model(1.0),
                                top_k=1, epsilon=1.0)
        trees = distinct_trees(6)
        ev.evaluate_batch([(t, "codrle4") for t in trees])
        # epsilon=1.0 pulls every tail group into the exact set
        assert ev.exact_jobs == 6
        assert ev.predicted_jobs == 0

    def test_empty_batch(self):
        ev = SurrogateEvaluator(FakeInner(), CASE)
        assert ev.evaluate_batch([]) == []

    def test_top_k_validated(self):
        with pytest.raises(ValueError):
            SurrogateEvaluator(FakeInner(), CASE, top_k=0)


class TestStatsAndClose:
    def test_stats_merge_inner_and_are_ints(self):
        inner = FakeInner(offset=5.0)
        ev = SurrogateEvaluator(inner, CASE, model=constant_model(1.0),
                                top_k=2, epsilon=0.0)
        ev.evaluate_batch([(t, "codrle4") for t in distinct_trees(9)])
        stats = ev.stats()
        assert stats["inner_jobs"] == 2
        assert stats["surrogate_exact_jobs"] == 2
        assert stats["surrogate_sims_saved"] == 7
        assert stats["surrogate_batches"] == 1
        for value in stats.values():
            assert isinstance(value, int)

    def test_close_closes_inner(self):
        inner = FakeInner()
        with SurrogateEvaluator(inner, CASE):
            pass
        assert inner.closed


class TestStateRoundTrip:
    def run_batches(self, ev, trees, start, stop):
        outputs = []
        for i in range(start, stop):
            batch = [(t, "codrle4") for t in trees[i * 6:(i + 1) * 6]]
            outputs.append(ev.evaluate_batch(batch))
        return outputs

    def test_restored_evaluator_continues_identically(self):
        trees = distinct_trees(36)
        reference = SurrogateEvaluator(FakeInner(), CASE,
                                       top_k=2, min_fit_pairs=8, seed=3)
        first_half = self.run_batches(reference, trees, 0, 3)
        state = json.loads(json.dumps(reference.state_dict()))
        second_half = self.run_batches(reference, trees, 3, 6)

        resumed = SurrogateEvaluator(FakeInner(), CASE, seed=3)
        resumed.restore_state(state)
        del first_half
        assert self.run_batches(resumed, trees, 3, 6) == second_half
        assert resumed.stats()["surrogate_exact_jobs"] == \
            reference.stats()["surrogate_exact_jobs"]

    def test_version_and_case_checked(self):
        ev = SurrogateEvaluator(FakeInner(), CASE)
        state = ev.state_dict()
        with pytest.raises(ValueError):
            fresh = SurrogateEvaluator(FakeInner(), CASE)
            fresh.restore_state({**state, "version": 99})
        with pytest.raises(ValueError):
            other = SurrogateEvaluator(FakeInner(), "hyperblock")
            other.restore_state(state)


class TestSpearman:
    def test_perfect_and_inverted(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_degenerate_inputs(self):
        assert spearman([], []) == 0.0
        assert spearman([1.0], [2.0]) == 0.0
        assert spearman([1, 2, 3], [5, 5, 5]) == 0.0

    def test_ties_averaged(self):
        value = spearman([1, 2, 2, 3], [1, 2, 3, 4])
        assert 0.8 < value < 1.0
