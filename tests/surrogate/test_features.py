"""Property tests: the feature extractor is a total, stable function
of the expression tree.

The surrogate's whole premise is that a candidate's vector is the same
no matter how the tree reached the evaluator — freshly bred, reparsed
from a checkpoint, or mined back out of the fitness cache as text.
These tests pin that down over the production primitive sets:

* fixed vector width per case, equal to ``len(names)``;
* ``parse(unparse(tree))`` yields the identical vector (the cache
  round trip cannot shift features);
* the shape slots agree with the tree's own ``size()``/``depth()``
  and every count is a non-negative integer that adds back up to the
  node count.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.gp.generate import TreeGenerator
from repro.gp.parse import parse, unparse
from repro.metaopt.psets import PSETS
from repro.surrogate.features import (
    FUNCTION_ORDER,
    FeatureExtractor,
    TERMINAL_ORDER,
)

CASES = ("hyperblock", "regalloc", "prefetch")

DETERMINISTIC = settings(max_examples=40, deadline=None, derandomize=True)


@st.composite
def case_and_tree(draw):
    case = draw(st.sampled_from(CASES))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=2, max_value=6))
    full = draw(st.booleans())
    pset = PSETS[case]
    generator = TreeGenerator(pset, rng=random.Random(seed))
    build = generator.full if full else generator.grow
    return case, pset, build(depth)


class TestVectorShape:
    @DETERMINISTIC
    @given(case_and_tree())
    def test_width_fixed_per_case(self, inputs):
        case, pset, tree = inputs
        extractor = FeatureExtractor(pset)
        vector = extractor.vector(tree)
        assert len(vector) == extractor.width == len(extractor.names)
        expected_width = (3 + len(FUNCTION_ORDER) + len(TERMINAL_ORDER)
                          + 5 + len(pset.feature_names))
        assert extractor.width == expected_width

    @DETERMINISTIC
    @given(case_and_tree())
    def test_all_entries_finite_floats(self, inputs):
        _case, pset, tree = inputs
        for value in FeatureExtractor(pset).vector(tree):
            assert isinstance(value, float)
            assert math.isfinite(value)

    def test_names_unique_and_width_matches(self):
        for case in CASES:
            extractor = FeatureExtractor(PSETS[case])
            assert len(set(extractor.names)) == extractor.width


class TestRoundTripInvariance:
    @DETERMINISTIC
    @given(case_and_tree())
    def test_parse_unparse_preserves_vector(self, inputs):
        _case, pset, tree = inputs
        extractor = FeatureExtractor(pset)
        reparsed = parse(unparse(tree), pset.bool_feature_set())
        assert extractor.vector(reparsed) == extractor.vector(tree)


class TestStructuralBounds:
    @DETERMINISTIC
    @given(case_and_tree())
    def test_shape_slots_match_tree(self, inputs):
        _case, pset, tree = inputs
        extractor = FeatureExtractor(pset)
        vector = dict(zip(extractor.names, extractor.vector(tree)))
        assert vector["size"] == float(tree.size())
        assert vector["depth"] == float(tree.depth())
        assert 0.0 <= vector["terminal_fraction"] <= 1.0

    @DETERMINISTIC
    @given(case_and_tree())
    def test_counts_partition_the_tree(self, inputs):
        """Operator + terminal counts account for every node once."""
        _case, pset, tree = inputs
        extractor = FeatureExtractor(pset)
        vector = dict(zip(extractor.names, extractor.vector(tree)))
        op_total = sum(vector[f"op_{op}"] for op in FUNCTION_ORDER)
        term_total = sum(vector[f"term_{t}"] for t in TERMINAL_ORDER)
        assert op_total + term_total == vector["size"]
        for op in FUNCTION_ORDER:
            assert vector[f"op_{op}"] >= 0.0
            assert vector[f"op_{op}"].is_integer()
        for term in TERMINAL_ORDER:
            assert vector[f"term_{term}"] >= 0.0
            assert vector[f"term_{term}"].is_integer()

    @DETERMINISTIC
    @given(case_and_tree())
    def test_usage_bounded_by_terminal_count(self, inputs):
        _case, pset, tree = inputs
        extractor = FeatureExtractor(pset)
        vector = dict(zip(extractor.names, extractor.vector(tree)))
        term_total = sum(vector[f"term_{t}"] for t in TERMINAL_ORDER)
        usage_total = sum(vector[f"use_{name}"]
                          for name in pset.feature_names)
        assert usage_total <= term_total
