"""Model training is deterministic, order-independent, and JSON
round-trippable — the properties resume byte-identity leans on."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.surrogate.model import (
    BoostedStumpsModel,
    MIN_TOTAL_PAIRS,
    RidgeModel,
    SurrogateModel,
    model_from_json_dict,
)

DETERMINISTIC = settings(max_examples=25, deadline=None, derandomize=True)

WIDTH = 5
NAMES = tuple(f"f{i}" for i in range(WIDTH))


def synthetic_pairs(seed, count=24, benchmarks=("a", "b", "c")):
    """Noisy-linear labeled vectors, deterministic per seed."""
    rng = random.Random(seed)
    pairs = []
    for i in range(count):
        vector = [float(rng.randint(0, 9)) for _ in range(WIDTH)]
        label = (1.0 + 0.05 * vector[0] - 0.02 * vector[3]
                 + 0.01 * rng.random())
        pairs.append((vector, benchmarks[i % len(benchmarks)], label))
    return pairs


class TestTrainingDeterminism:
    @DETERMINISTIC
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["ridge", "stumps"]),
           st.integers(min_value=0, max_value=10_000))
    def test_same_pairs_any_order_byte_identical(self, seed, kind,
                                                 shuffle_seed):
        pairs = synthetic_pairs(seed)
        shuffled = pairs[:]
        random.Random(shuffle_seed).shuffle(shuffled)

        first = SurrogateModel(kind=kind, feature_names=NAMES, seed=7)
        first.fit(pairs)
        second = SurrogateModel(kind=kind, feature_names=NAMES, seed=7)
        second.fit(shuffled)
        assert first.to_json() == second.to_json()

    @DETERMINISTIC
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["ridge", "stumps"]))
    def test_json_round_trip_byte_identical(self, seed, kind):
        model = SurrogateModel(kind=kind, feature_names=NAMES, seed=3)
        model.fit(synthetic_pairs(seed))
        restored = model_from_json_dict(model.to_json_dict())
        assert restored.to_json() == model.to_json()
        vector = [1.0, 2.0, 3.0, 4.0, 5.0]
        for benchmark in ("a", "never-seen"):
            assert restored.predict(vector, benchmark) == \
                model.predict(vector, benchmark)


class TestFitContract:
    def test_too_few_pairs_rejected(self):
        model = SurrogateModel(feature_names=NAMES)
        with pytest.raises(ValueError):
            model.fit(synthetic_pairs(0)[:MIN_TOTAL_PAIRS - 1])

    def test_wrong_width_rejected(self):
        model = SurrogateModel(feature_names=NAMES)
        bad = [([1.0, 2.0], "a", 1.0)] * MIN_TOTAL_PAIRS
        with pytest.raises(ValueError):
            model.fit(bad)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError):
            SurrogateModel(feature_names=NAMES).predict(
                [0.0] * WIDTH, "a")

    def test_predict_wrong_width_rejected(self):
        model = SurrogateModel(feature_names=NAMES)
        model.fit(synthetic_pairs(1))
        with pytest.raises(ValueError):
            model.predict([0.0] * (WIDTH + 1), "a")

    def test_unknown_kind_rejected(self):
        model = SurrogateModel(kind="forest", feature_names=NAMES)
        with pytest.raises(ValueError):
            model.fit(synthetic_pairs(2))

    def test_per_benchmark_submodels_fit_when_enough_rows(self):
        # 24 pairs over 3 benchmarks → 8 rows each, exactly the floor.
        model = SurrogateModel(feature_names=NAMES)
        model.fit(synthetic_pairs(4, count=24))
        assert sorted(model.per_benchmark) == ["a", "b", "c"]
        # 7 rows per benchmark stays global-only.
        sparse = SurrogateModel(feature_names=NAMES)
        sparse.fit(synthetic_pairs(4, count=21,
                                   benchmarks=("a", "b", "c")))
        assert sparse.per_benchmark == {}


class TestBaseModels:
    def test_ridge_recovers_linear_signal(self):
        rng = random.Random(11)
        xs = [[float(rng.randint(0, 9)) for _ in range(3)]
              for _ in range(40)]
        ys = [2.0 + 0.5 * x[0] - 0.25 * x[2] for x in xs]
        model = RidgeModel()
        model.fit(xs, ys)
        # alpha=1.0 shrinks the weights slightly; close is enough
        for x, y in zip(xs, ys):
            assert abs(model.predict(x) - y) < 0.2

    def test_stumps_fit_a_step_function(self):
        xs = [[float(i)] for i in range(20)]
        ys = [0.0 if i < 10 else 1.0 for i in range(20)]
        model = BoostedStumpsModel()
        model.fit(xs, ys)
        assert model.predict([2.0]) < 0.2
        assert model.predict([17.0]) > 0.8

    def test_constant_target_is_exact(self):
        xs = [[float(i), float(i % 3)] for i in range(12)]
        ys = [4.0] * 12
        for cls in (RidgeModel, BoostedStumpsModel):
            model = cls()
            model.fit(xs, ys)
            assert abs(model.predict([99.0, 1.0]) - 4.0) < 1e-9
