"""Unit tests for the EXPERIMENTS.md generator helpers."""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

import update_experiments as tool  # noqa: E402


class TestHelpers:
    def test_fmt(self):
        assert tool.fmt(1.23456) == "1.235"
        assert tool.fmt(1.0, digits=1) == "1.0"

    def test_avg(self):
        assert tool.avg([1.0, 3.0]) == 2.0
        assert math.isnan(tool.avg([]))

    def test_pair_table(self):
        table, train_avg, novel_avg = tool.pair_table(
            {"a": [1.2, 1.1], "b": [1.0, 0.9]}
        )
        assert "| a | 1.200 | 1.100 |" in table
        assert "**1.100**" in table
        assert train_avg == 1.1
        assert novel_avg == 1.0

    def test_spec_table(self):
        table, train_avg, _ = tool.spec_table(
            {"x": {"train": 1.5, "novel": 1.2}}, "1.54", "1.23"
        )
        assert "| x | 1.500 | 1.200 |" in table
        assert "Paper averages: 1.54 train / 1.23 novel." in table
        assert train_avg == 1.5

    def test_load_missing_returns_none(self):
        assert tool.load("definitely-not-a-result") is None
