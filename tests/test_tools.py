"""Unit tests for the EXPERIMENTS.md generator helpers."""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

import update_experiments as tool  # noqa: E402


class TestHelpers:
    def test_fmt(self):
        assert tool.fmt(1.23456) == "1.235"
        assert tool.fmt(1.0, digits=1) == "1.0"

    def test_avg(self):
        assert tool.avg([1.0, 3.0]) == 2.0
        assert math.isnan(tool.avg([]))

    def test_pair_table(self):
        table, train_avg, novel_avg = tool.pair_table(
            {"a": [1.2, 1.1], "b": [1.0, 0.9]}
        )
        assert "| a | 1.200 | 1.100 |" in table
        assert "**1.100**" in table
        assert train_avg == 1.1
        assert novel_avg == 1.0

    def test_spec_table(self):
        table, train_avg, _ = tool.spec_table(
            {"x": {"train": 1.5, "novel": 1.2}}, "1.54", "1.23"
        )
        assert "| x | 1.500 | 1.200 |" in table
        assert "Paper averages: 1.54 train / 1.23 novel." in table
        assert train_avg == 1.5

    def test_load_missing_returns_none(self):
        assert tool.load("definitely-not-a-result") is None


import bench_eval  # noqa: E402


class TestMedianIqr:
    def test_single_sample_has_zero_iqr(self):
        assert bench_eval.median_iqr([4.2]) == (4.2, 0.0)

    def test_median_and_iqr(self):
        median, iqr = bench_eval.median_iqr([1.0, 2.0, 3.0, 4.0, 5.0])
        assert median == 3.0
        assert iqr == 2.0

    def test_outlier_does_not_swing_median(self):
        median, _ = bench_eval.median_iqr([10.0, 10.1, 9.9, 1000.0, 10.0])
        assert median == 10.0


class TestBenchPayloadSchema:
    def make_payload(self):
        mode = {"evaluations": 24, "repeats": 2,
                "seconds": [1.0, 1.1], "rates": [24.0, 21.8],
                "median_seconds": 1.05, "median_rate": 22.9,
                "iqr_rate": 1.1}
        return {
            "schema": bench_eval.BENCH_SCHEMA,
            "case": "hyperblock", "benchmark": "codrle4",
            "pop": 8, "gens": 2, "seed": 7, "processes": 2,
            "repeats": 2,
            "modes": {name: dict(mode) for name in bench_eval.MODES},
            "forking": {
                name: {"benchmark": "codrle4", "speedup": 1.8,
                       "identical": True,
                       "full": dict(mode), "forked": dict(mode)}
                for name in bench_eval.FORKING_CASES
            },
            "fleet": {
                "workers": 4, "best_speedup": 0.9,
                "cases": {
                    name: {"benchmark": "codrle4", "pop": 8, "gens": 2,
                           "serial": dict(mode), "fleet": dict(mode),
                           "speedup": 0.9, "identical": True,
                           "stats": {key: 0 for key
                                     in bench_eval.FLEET_STAT_KEYS}}
                    for name in bench_eval.FLEET_CASES
                },
            },
            "surrogate": {
                "top_k": 2, "best_reduction": 8.0,
                "cases": {
                    name: {"benchmark": "codrle4", "pop": 8, "gens": 2,
                           "exact_sims": 8, "surrogate_sims": 1,
                           "sims_reduction": 8.0,
                           "exact_champion_fitness": 1.0,
                           "surrogate_champion_exact_fitness": 1.0,
                           "champion_ok": True, "training_pairs": 9,
                           "stats": {key: 0 for key
                                     in bench_eval.SURROGATE_STAT_KEYS}}
                    for name in bench_eval.SURROGATE_CASES
                },
            },
            "speedup_parallel": 1.5, "speedup_warm": 3.0,
            "speedup_fleet": 0.9,
            "warm_sim_invocations": 0,
            "determinism_ok": True, "failures": [],
        }

    def test_valid_payload_passes(self):
        assert bench_eval.validate_bench_payload(self.make_payload()) == []

    def test_missing_forking_case_flagged(self):
        payload = self.make_payload()
        del payload["forking"]["regalloc"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("forking.regalloc" in problem for problem in problems)

    def test_forking_identity_must_be_boolean(self):
        payload = self.make_payload()
        payload["forking"]["scheduling"]["identical"] = "yes"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("forking.scheduling.identical" in problem
                   for problem in problems)

    def test_missing_fleet_section_flagged(self):
        payload = self.make_payload()
        del payload["fleet"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("fleet must be an object" in problem
                   for problem in problems)

    def test_missing_fleet_case_flagged(self):
        payload = self.make_payload()
        del payload["fleet"]["cases"]["regalloc"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("fleet.cases.regalloc" in problem
                   for problem in problems)

    def test_fleet_identity_must_be_boolean(self):
        payload = self.make_payload()
        payload["fleet"]["cases"]["scheduling"]["identical"] = "yes"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("fleet.cases.scheduling.identical" in problem
                   for problem in problems)

    def test_fleet_stats_counters_must_be_integers(self):
        payload = self.make_payload()
        payload["fleet"]["cases"]["regalloc"]["stats"][
            "shards_stolen"] = "many"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("fleet.cases.regalloc.stats.shards_stolen" in problem
                   for problem in problems)

    def test_missing_surrogate_section_flagged(self):
        payload = self.make_payload()
        del payload["surrogate"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("surrogate must be an object" in problem
                   for problem in problems)

    def test_missing_surrogate_case_flagged(self):
        payload = self.make_payload()
        del payload["surrogate"]["cases"]["scheduling"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("surrogate.cases.scheduling" in problem
                   for problem in problems)

    def test_surrogate_champion_flag_must_be_boolean(self):
        payload = self.make_payload()
        payload["surrogate"]["cases"]["regalloc"]["champion_ok"] = "yes"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("surrogate.cases.regalloc.champion_ok" in problem
                   for problem in problems)

    def test_surrogate_sims_must_be_integers(self):
        payload = self.make_payload()
        payload["surrogate"]["cases"]["regalloc"]["exact_sims"] = 8.5
        problems = bench_eval.validate_bench_payload(payload)
        assert any("surrogate.cases.regalloc.exact_sims" in problem
                   for problem in problems)

    def test_wrong_schema_flagged(self):
        payload = self.make_payload()
        payload["schema"] = 99
        problems = bench_eval.validate_bench_payload(payload)
        assert any("schema" in problem for problem in problems)

    def test_missing_mode_flagged(self):
        payload = self.make_payload()
        del payload["modes"]["warm"]
        problems = bench_eval.validate_bench_payload(payload)
        assert any("modes.warm" in problem for problem in problems)

    def test_non_numeric_rate_flagged(self):
        payload = self.make_payload()
        payload["modes"]["serial"]["median_rate"] = "fast"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("serial.median_rate" in problem for problem in problems)

    def test_empty_rates_flagged(self):
        payload = self.make_payload()
        payload["modes"]["parallel"]["rates"] = []
        problems = bench_eval.validate_bench_payload(payload)
        assert any("parallel.rates" in problem for problem in problems)

    def test_bool_determinism_required(self):
        payload = self.make_payload()
        payload["determinism_ok"] = "yes"
        problems = bench_eval.validate_bench_payload(payload)
        assert any("determinism_ok" in problem for problem in problems)


import bench_serve  # noqa: E402


class TestServePercentiles:
    def test_percentile_nearest_rank(self):
        values = [float(n) for n in range(1, 101)]
        assert bench_serve.percentile(values, 0.50) == 50.0
        assert bench_serve.percentile(values, 0.95) == 95.0
        assert bench_serve.percentile(values, 0.99) == 99.0

    def test_percentile_edges(self):
        assert bench_serve.percentile([], 0.5) == 0.0
        assert bench_serve.percentile([7.0], 0.99) == 7.0

    def test_latency_summary(self):
        summary = bench_serve.latency_summary([0.1, 0.2, 0.3, 0.4])
        assert summary["p50"] == 0.2
        assert summary["max"] == 0.4
        assert abs(summary["mean"] - 0.25) < 1e-12


class TestServePayloadSchema:
    def make_payload(self):
        return {
            "schema": bench_serve.BENCH_SCHEMA,
            "benchmark": "codrle4", "case": "hyperblock",
            "clients": 8, "requests": 24, "workers": 2, "capacity": 2,
            "completed": 24, "errors": 0, "error_messages": [],
            "client_retries": 3, "shed_429": 3,
            "elapsed_seconds": 1.0, "throughput_rps": 24.0,
            "latency_seconds": {"p50": 0.01, "p95": 0.9, "p99": 1.0,
                                "mean": 0.2, "max": 1.1},
            "identical_payloads": True,
            "queue": {"done": 25},
        }

    def test_valid_payload_passes(self):
        assert bench_serve.validate_serve_payload(self.make_payload()) == []

    def test_wrong_schema_flagged(self):
        payload = self.make_payload()
        payload["schema"] = 0
        problems = bench_serve.validate_serve_payload(payload)
        assert any("schema" in problem for problem in problems)

    def test_missing_percentile_flagged(self):
        payload = self.make_payload()
        del payload["latency_seconds"]["p99"]
        problems = bench_serve.validate_serve_payload(payload)
        assert any("p99" in problem for problem in problems)

    def test_non_integer_counts_flagged(self):
        payload = self.make_payload()
        payload["shed_429"] = "three"
        problems = bench_serve.validate_serve_payload(payload)
        assert any("shed_429" in problem for problem in problems)
