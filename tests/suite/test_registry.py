"""Benchmark registry: Table 5 coverage, dataset determinism, and the
experiment groupings."""

import pytest

from repro.frontend import compile_source
from repro.suite import (
    HYPERBLOCK_TEST_SET,
    HYPERBLOCK_TRAINING_SET,
    PREFETCH_TEST_SET,
    PREFETCH_TRAINING_SET,
    REGALLOC_TEST_SET,
    REGALLOC_TRAINING_SET,
    all_benchmarks,
    by_category,
    by_suite,
    get,
)

#: Table 5's benchmark names (plus the FP suites of Sections 7).
TABLE5_NAMES = {
    "codrle4", "decodrle4", "huff_enc", "huff_dec", "djpeg",
    "g721encode", "g721decode", "mpeg2dec", "rasta", "rawcaudio",
    "rawdaudio", "toast", "unepic", "085.cc1", "osdemo", "mipmap",
    "129.compress", "132.ijpeg", "130.li", "124.m88ksim", "147.vortex",
}


class TestCoverage:
    def test_table5_names_present(self):
        names = set(all_benchmarks())
        missing = TABLE5_NAMES - names
        assert not missing, f"missing Table 5 benchmarks: {missing}"

    def test_prefetch_suites_present(self):
        names = set(all_benchmarks())
        assert set(PREFETCH_TRAINING_SET) <= names
        assert set(PREFETCH_TEST_SET) <= names

    def test_experiment_sets_are_registered(self):
        names = set(all_benchmarks())
        for group in (HYPERBLOCK_TRAINING_SET, HYPERBLOCK_TEST_SET,
                      REGALLOC_TRAINING_SET, REGALLOC_TEST_SET,
                      PREFETCH_TRAINING_SET, PREFETCH_TEST_SET):
            assert set(group) <= names

    def test_training_and_test_sets_disjoint(self):
        assert not set(HYPERBLOCK_TRAINING_SET) & set(HYPERBLOCK_TEST_SET)
        assert not set(REGALLOC_TRAINING_SET) & set(REGALLOC_TEST_SET)
        assert not set(PREFETCH_TRAINING_SET) & set(PREFETCH_TEST_SET)

    def test_suite_sizes(self):
        assert len(all_benchmarks()) >= 40
        assert len(by_suite("spec2000")) == 12
        assert len(by_category("fp")) >= 20

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get("no-such-benchmark")


class TestDatasets:
    def test_inputs_deterministic(self):
        bench = get("codrle4")
        assert bench.inputs("train") == bench.inputs("train")
        assert bench.inputs("novel") == bench.inputs("novel")

    def test_train_differs_from_novel(self):
        # Promoted reproducers are exempt: they pin adversarial control
        # flow, not dataset generalization, and may carry one input set.
        organic = {name: bench for name, bench in all_benchmarks().items()
                   if bench.suite != "promoted"}
        different = 0
        for name, bench in organic.items():
            if bench.inputs("train") != bench.inputs("novel"):
                different += 1
        assert different >= len(organic) - 1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            get("codrle4").inputs("validation")

    def test_inputs_fit_declared_globals(self):
        for name, bench in sorted(all_benchmarks().items()):
            module = compile_source(bench.source, name)
            for dataset in ("train", "novel"):
                for key, values in bench.inputs(dataset).items():
                    array = module.globals.get(key)
                    assert array is not None, f"{name}: no global {key}"
                    assert len(values) <= array.size, \
                        f"{name}.{key}: {len(values)} > {array.size}"


class TestSources:
    def test_all_sources_compile(self):
        for name, bench in sorted(all_benchmarks().items()):
            module = compile_source(bench.source, name)
            module.validate()

    def test_descriptions_nonempty(self):
        for bench in all_benchmarks().values():
            assert bench.description
            assert bench.suite in ("mediabench", "spec92", "spec95",
                                   "spec2000", "misc", "promoted")
            assert bench.category in ("int", "fp")
