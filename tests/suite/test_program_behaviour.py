"""Behavioural validation of the benchmark programs themselves: the
codecs really encode/decode, the simulators really simulate, the
kernels compute what their names promise.  This keeps the suite honest
— a benchmark that silently computes garbage would still exercise the
compiler, but its name would lie.
"""

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.suite import get
from repro.suite.programs.huffman import _build_huffman
from repro.suite.programs.rle import _encode as rle_encode
from repro.suite.datagen import LCG, rng_for, runlength_data, skewed_bytes


def run_bench(name, dataset="train", extra_inputs=None):
    bench = get(name)
    module = compile_source(bench.source, name)
    interp = Interpreter(module, max_steps=5_000_000)
    inputs = dict(bench.inputs(dataset))
    if extra_inputs:
        inputs.update(extra_inputs)
    for key, values in inputs.items():
        interp.set_global(key, values)
    result = interp.run()
    return result, interp, inputs


class TestDatagen:
    def test_lcg_deterministic(self):
        assert LCG(7).ints(10, 0, 100) == LCG(7).ints(10, 0, 100)

    def test_lcg_ranges(self):
        values = LCG(3).ints(500, -5, 5)
        assert all(-5 <= v <= 5 for v in values)
        assert min(values) == -5 and max(values) == 5

    def test_lcg_uniform_range(self):
        values = LCG(4).floats(200, 2.0, 3.0)
        assert all(2.0 <= v <= 3.0 for v in values)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            LCG(1).randint(5, 4)

    def test_seed_for_distinguishes_datasets(self):
        from repro.suite.datagen import seed_for

        assert seed_for("x", "train") != seed_for("x", "novel")
        assert seed_for("x", "train") != seed_for("y", "train")

    def test_runlength_data_has_runs(self):
        data = runlength_data(LCG(5), 500, run_bias=9)
        runs = sum(1 for a, b in zip(data, data[1:]) if a == b)
        assert runs > 150

    def test_skewed_bytes_are_skewed(self):
        data = skewed_bytes(LCG(6), 1000, hot_fraction=80)
        hot = sum(1 for v in data if v < 8)
        assert hot > 700


class TestRLE:
    def test_encoder_matches_python_mirror(self):
        result, _interp, inputs = run_bench("codrle4")
        expected = rle_encode(inputs["input"])
        assert result.outputs[0] == len(expected)

    def test_decoder_inverts_encoder(self):
        result, interp, _inputs = run_bench("decodrle4")
        # The decoder's input was produced by encoding the raw stream;
        # decoding must recover its original length (first output).
        raw = runlength_data(rng_for("decodrle4", "train"), 700,
                             run_bias=9)
        assert result.outputs[0] == len(raw)
        decoded = interp.read_global("output", len(raw))
        assert decoded == raw


class TestHuffman:
    def test_decoder_recovers_symbols(self):
        rng = rng_for("huff_dec", "train")
        data = skewed_bytes(rng, 280, hot_fraction=70)
        result, interp, _inputs = run_bench("huff_dec")
        assert result.outputs[0] == len(data)
        decoded = interp.read_global("output", len(data))
        assert decoded == data

    def test_codes_are_prefix_free(self):
        data = skewed_bytes(rng_for("huff_dec", "train"), 280, 70)
        codes, _flat = _build_huffman(data)
        items = sorted(codes.values())
        for first, second in zip(items, items[1:]):
            assert not second.startswith(first)

    def test_encoder_bits_beat_fixed_width(self):
        result, _interp, inputs = run_bench("huff_enc")
        bits = result.outputs[0]
        fixed = len(inputs["input"]) * 5  # 32-symbol alphabet = 5 bits
        assert bits < fixed


class TestADPCM:
    def test_decoder_tracks_waveform(self):
        """rawdaudio's reconstruction roughly follows the original
        waveform the deltas encode."""
        from repro.suite.programs.adpcm import _encode, _samples

        samples = _samples("train", "rawdaudio")
        result, interp, _inputs = run_bench("rawdaudio")
        reconstructed = interp.read_global("output", len(samples))
        errors = [abs(a - b) for a, b in zip(samples, reconstructed)]
        mean_error = sum(errors) / len(errors)
        spread = max(samples) - min(samples) or 1
        assert mean_error < 0.35 * spread

    def test_encoder_deltas_in_range(self):
        result, interp, inputs = run_bench("rawcaudio")
        deltas = interp.read_global("output", inputs["input_len"][0])
        assert all(0 <= d <= 15 for d in deltas)


class TestInterpreters:
    def test_li_evaluates_bytecode(self):
        result, _interp, _inputs = run_bench("130.li")
        # halt pushes 42 as the final result
        assert result.outputs[0] == 42

    def test_m88ksim_hardwired_zero(self):
        result, interp, _inputs = run_bench("124.m88ksim")
        regs = interp.read_global("regs", 1)
        assert regs[0] == 0

    def test_cc1_evaluates_expressions(self):
        """The MiniC evaluator agrees with Python eval on the token
        stream."""
        result, _interp, inputs = run_bench("085.cc1")
        stream = inputs["stream"]
        mapping = {10: "+", 11: "-", 12: "*", 13: "(", 14: ")"}
        total = 0
        count = 0
        parts: list[str] = []
        digits: list[int] = []

        def flush_digits():
            if digits:
                value = 0
                for digit in digits:
                    value = value * 10 + digit
                parts.append(str(value))
                digits.clear()

        for token in stream:
            if token == 15:
                flush_digits()
                total += eval(" ".join(parts))  # generated tokens only
                count += 1
                parts.clear()
            elif token < 10:
                digits.append(token)
            else:
                flush_digits()
                parts.append(mapping[token])
        assert result.outputs == [total, count]


class TestKernels:
    def test_eqntott_counts_true_minterms(self):
        result, _interp, _inputs = run_bench("023.eqntott")
        count = result.outputs[0]

        def f(a):
            maj = ((a & 1) + ((a >> 1) & 1) + ((a >> 2) & 1)) >= 2
            par = (((a >> 3) & 1) ^ ((a >> 4) & 1)) ^ ((a >> 5) & 1)
            return (maj ^ par) == 1

        expected = sum(1 for a in range(64) if f(a))
        assert count == expected

    def test_compress_shrinks_repetitive_data(self):
        result, _interp, inputs = run_bench("129.compress", "train")
        output_len = result.outputs[0]
        assert output_len < inputs["input_len"][0] * 0.8

    def test_compress_cannot_shrink_random_data(self):
        result, _interp, inputs = run_bench("129.compress", "novel")
        output_len = result.outputs[0]
        assert output_len > inputs["input_len"][0] * 0.5

    def test_nasa7_cholesky_diagonal_positive(self):
        _result, interp, _inputs = run_bench("093.nasa7")
        chol = interp.read_global("chol")
        diagonal = [chol[i * 24 + i] for i in range(24)]
        assert all(d > 0 for d in diagonal)

    def test_mipmap_levels_average_texture(self):
        _result, interp, inputs = run_bench("mipmap")
        texture = inputs["texture"]
        levels = interp.read_global("levels")
        # level 1 (16x16) entry (0,0) is the box filter of the 2x2
        # top-left texels.
        expected = (texture[0] + texture[1] + texture[32]
                    + texture[33] + 2) >> 2
        assert levels[1024] == min(255, expected)

    def test_osdemo_counts_visible_vertices(self):
        result, _interp, inputs = run_bench("osdemo")
        accepted = result.outputs[1]
        nverts = inputs["nverts"][0]
        assert 0 < accepted < nverts

    def test_facerec_finds_plausible_position(self):
        result, _interp, _inputs = run_bench("187.facerec")
        position = result.outputs[1]
        assert 0 <= position < 48 * 48

    def test_wave5_conserves_particles(self):
        _result, interp, inputs = run_bench("146.wave5")
        charge = interp.read_global("charge")
        total = sum(charge)
        assert total == pytest.approx(inputs["nparticles"][0], rel=0.01)
