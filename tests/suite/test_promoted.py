"""The fuzzer-promoted benchmark suite (``repro suite promote``).

Covers the committed registry (``promoted_programs.json``): the
train/novel split partitions, registration as first-class suite
benchmarks, the promotion gate, the CLI — and the headline regression:
a promoted program compiled from the registry produces exactly the
cycle count of the original corpus file compiled directly, so
promotion can never silently change what a reproducer measures.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.frontend import compile_source
from repro.machine.sim import Simulator
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare
from repro.suite import (
    PROMOTED_NOVEL_SET,
    PROMOTED_TRAINING_SET,
    all_benchmarks,
    get,
)
from repro.suite.promoted import (
    PROMOTED_SCHEMA,
    PromotedProgram,
    PromotionError,
    load_promoted,
    promote_corpus_entry,
    save_promoted,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

OPTIONS = CompilerOptions()


def pipeline_cycles(source: str, inputs: dict, name: str) -> int:
    """Source + inputs through the full default pipeline; the one
    measurement both promotion paths must agree on."""
    module = compile_source(source, name)
    prep = prepare(module, inputs, OPTIONS)
    scheduled, _report = compile_backend(prep, OPTIONS)
    simulator = Simulator(scheduled, OPTIONS.machine)
    for key, values in inputs.items():
        simulator.set_global(key, values)
    return simulator.run().cycles


class TestCommittedRegistry:
    def test_splits_partition_the_registry(self):
        programs = load_promoted()
        assert len(programs) >= 6
        names = sorted(program.name for program in programs)
        assert sorted(PROMOTED_TRAINING_SET + PROMOTED_NOVEL_SET) == names
        assert not set(PROMOTED_TRAINING_SET) & set(PROMOTED_NOVEL_SET)
        assert PROMOTED_TRAINING_SET and PROMOTED_NOVEL_SET

    def test_promoted_programs_are_registered_benchmarks(self):
        benchmarks = all_benchmarks()
        for program in load_promoted():
            bench = benchmarks[program.name]
            assert bench.suite == "promoted"
            assert program.split in bench.description
            assert program.origin in bench.description

    def test_reproducer_datasets_coincide(self):
        """Reproducers pin adversarial control flow, not dataset
        generalization: both datasets are the reproducing inputs."""
        for program in load_promoted():
            bench = get(program.name)
            assert bench.inputs("novel") == bench.inputs("train")

    def test_inputs_are_fresh_copies(self):
        bench = get(PROMOTED_TRAINING_SET[0])
        first = bench.inputs("train")
        next(iter(first.values())).append(999)
        assert bench.inputs("train") != first


class TestCorpusSuiteAgreement:
    """The regression the promotion workflow exists to uphold."""

    @pytest.mark.parametrize("stem", ["diamond-join", "unused-param",
                                      "nested-predication",
                                      "guarded-load-prefetch"])
    def test_corpus_path_and_suite_path_cycles_identical(self, stem):
        source = (CORPUS_DIR / f"{stem}.mc").read_text()
        inputs = json.loads(
            (CORPUS_DIR / f"{stem}.inputs.json").read_text())
        corpus_cycles = pipeline_cycles(source, inputs, stem)

        bench = get(stem)
        suite_cycles = pipeline_cycles(bench.source,
                                       bench.inputs("train"), stem)
        assert suite_cycles == corpus_cycles

    @pytest.mark.parametrize("seed", [7340032, 7340033])
    def test_fuzz_path_and_suite_path_cycles_identical(self, seed):
        from repro.verify.fuzz import generate_program

        fuzz = generate_program(seed)
        fuzz_cycles = pipeline_cycles(fuzz.source, fuzz.inputs,
                                      f"fuzz-{seed}")
        bench = get(f"fuzz-{seed}")
        suite_cycles = pipeline_cycles(bench.source,
                                       bench.inputs("train"),
                                       f"fuzz-{seed}")
        assert suite_cycles == fuzz_cycles


class TestPromotionGate:
    def test_corpus_entry_promotes(self):
        program = promote_corpus_entry(CORPUS_DIR / "unused-param.mc",
                                       split="novel")
        assert program.name == "unused-param"
        assert program.split == "novel"
        assert program.origin == "corpus:unused-param"
        assert program.train_inputs == program.novel_inputs

    def test_missing_inputs_file_rejected(self, tmp_path):
        orphan = tmp_path / "orphan.mc"
        orphan.write_text("void main() { out(1); }")
        with pytest.raises(PromotionError, match="inputs"):
            promote_corpus_entry(orphan)

    def test_bad_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            PromotedProgram(name="x", description="d", origin="o",
                            split="test", source="void main() {}",
                            train_inputs={}, novel_inputs={})

    def test_schema_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "promoted.json"
        bad.write_text(json.dumps({"schema": 99, "programs": []}))
        with pytest.raises(ValueError, match="schema"):
            load_promoted(bad)

    def test_save_load_round_trip(self, tmp_path):
        program = promote_corpus_entry(CORPUS_DIR / "diamond-join.mc")
        path = tmp_path / "promoted.json"
        save_promoted([program], path)
        assert load_promoted(path) == [program]


class TestPromoteCLI:
    def test_promote_corpus_file_to_scratch_registry(self, tmp_path,
                                                     capsys):
        registry = tmp_path / "promoted.json"
        assert main(["suite", "promote",
                     "--corpus", str(CORPUS_DIR / "unused-param.mc"),
                     "--split", "novel",
                     "--registry-file", str(registry), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["promoted"] == ["unused-param"]
        assert report["total"] == 1
        data = json.loads(registry.read_text())
        assert data["schema"] == PROMOTED_SCHEMA
        assert data["programs"][0]["split"] == "novel"

    def test_repromotion_replaces_not_duplicates(self, tmp_path):
        registry = tmp_path / "promoted.json"
        corpus = str(CORPUS_DIR / "unused-param.mc")
        base = ["suite", "promote", "--corpus", corpus,
                "--registry-file", str(registry)]
        assert main(base + ["--split", "train"]) == 0
        assert main(base + ["--split", "novel"]) == 0
        programs = load_promoted(registry)
        assert len(programs) == 1
        assert programs[0].split == "novel"

    def test_promote_corpus_directory(self, tmp_path, capsys):
        registry = tmp_path / "promoted.json"
        assert main(["suite", "promote", "--corpus", str(CORPUS_DIR),
                     "--registry-file", str(registry), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 4

    def test_promote_without_sources_rejected(self):
        with pytest.raises(SystemExit, match="nothing to promote"):
            main(["suite", "promote"])

    def test_promote_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no .mc"):
            main(["suite", "promote", "--corpus", str(empty),
                  "--registry-file", str(tmp_path / "r.json")])
