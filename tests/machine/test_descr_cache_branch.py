"""Machine description (Table 3), cache hierarchy, branch predictor."""

import pytest

from repro.ir.instr import FUClass, Opcode, binop, jmp, load, mov, prefetch, store
from repro.ir.values import FLOAT, INT, VReg, WORD_BYTES
from repro.machine.branch import TwoBitPredictor
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    REGALLOC_MACHINE,
    CacheLevelConfig,
    MachineDescription,
)


def vr(uid, vtype=INT):
    return VReg(uid, vtype)


class TestTable3:
    """The default machine matches the paper's Table 3."""

    def test_register_files(self):
        assert DEFAULT_EPIC.gp_registers == 64
        assert DEFAULT_EPIC.fp_registers == 64
        assert DEFAULT_EPIC.pred_registers == 256

    def test_functional_units(self):
        assert DEFAULT_EPIC.int_units == 4
        assert DEFAULT_EPIC.fp_units == 2
        assert DEFAULT_EPIC.mem_units == 2
        assert DEFAULT_EPIC.branch_units == 1

    def test_integer_latencies(self):
        assert DEFAULT_EPIC.latency(binop(Opcode.ADD, vr(0), vr(1), vr(2))) == 1
        assert DEFAULT_EPIC.latency(binop(Opcode.MUL, vr(0), vr(1), vr(2))) == 3
        assert DEFAULT_EPIC.latency(binop(Opcode.DIV, vr(0), vr(1), vr(2))) == 8
        assert DEFAULT_EPIC.latency(binop(Opcode.REM, vr(0), vr(1), vr(2))) == 8

    def test_float_latencies(self):
        f = lambda op: binop(op, vr(0, FLOAT), vr(1, FLOAT), vr(2, FLOAT))
        assert DEFAULT_EPIC.latency(f(Opcode.FADD)) == 3
        assert DEFAULT_EPIC.latency(f(Opcode.FMUL)) == 3
        assert DEFAULT_EPIC.latency(f(Opcode.FDIV)) == 8

    def test_memory_latencies(self):
        assert DEFAULT_EPIC.latency(load(vr(0), vr(1))) == 2  # L1
        assert DEFAULT_EPIC.latency(store(vr(0), vr(1))) == 1  # buffered
        cache_latencies = [c.latency for c in DEFAULT_EPIC.cache_levels]
        assert cache_latencies == [2, 7, 35]

    def test_branch_model(self):
        assert DEFAULT_EPIC.mispredict_penalty == 5

    def test_units_for(self):
        assert DEFAULT_EPIC.units_for(FUClass.INT) == 4
        assert DEFAULT_EPIC.units_for(FUClass.BRANCH) == 1

    def test_latency_override(self):
        machine = MachineDescription(
            name="m", latency_overrides={Opcode.MUL: 9})
        assert machine.latency(binop(Opcode.MUL, vr(0), vr(1), vr(2))) == 9

    def test_variant_machines(self):
        assert REGALLOC_MACHINE.gp_registers < DEFAULT_EPIC.gp_registers
        assert ITANIUM_MACHINE.cache_levels[0].size_bytes \
            < DEFAULT_EPIC.cache_levels[0].size_bytes

    def test_bad_cache_geometry_rejected(self):
        # 64KiB / (64B * 6-way) = 170 sets: not a power of two.
        with pytest.raises(ValueError):
            CacheLevelConfig("x", 64 * 1024, 64, 6, 2)


class TestCacheLevel:
    def _level(self, size=1024, line=64, assoc=2):
        return CacheLevel(CacheLevelConfig("t", size, line, assoc, 1))

    def test_miss_then_hit(self):
        level = self._level()
        assert not level.access(0)
        level.fill(0)
        assert level.access(0)

    def test_line_granularity(self):
        level = self._level(line=64)
        level.fill(0)
        assert level.probe(63)
        assert not level.probe(64)

    def test_lru_eviction(self):
        level = self._level(size=256, line=64, assoc=2)  # 2 sets
        # set 0 receives lines 0, 128, 256 (same set, stride 2 lines)
        level.fill(0)
        level.fill(128)
        level.probe(0)        # refresh 0: 128 is now LRU
        level.fill(256)       # evicts 128
        assert level.probe(0)
        assert not level.probe(128)
        assert level.probe(256)

    def test_stats(self):
        level = self._level()
        level.access(0)
        level.fill(0)
        level.access(0)
        assert level.stats.accesses == 2
        assert level.stats.hits == 1
        assert level.stats.misses == 1
        assert level.stats.hit_rate == 0.5


class TestHierarchy:
    def test_cold_load_costs_memory_latency(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        assert hierarchy.load(5000) == DEFAULT_EPIC.memory_latency

    def test_warm_load_costs_l1(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.load(5000)
        assert hierarchy.load(5000) == 2

    def test_same_line_neighbour_hits(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.load(5000)
        line_words = 64 // WORD_BYTES
        base = (5000 // line_words) * line_words
        assert hierarchy.load(base) == 2

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.load(0)
        # Touch enough distinct lines to evict line 0 from L1 (16KB,
        # 4-way, 64B lines -> 64 sets; lines conflict every 64 lines).
        line_words = 64 // WORD_BYTES
        for i in range(1, 6):
            hierarchy.load(i * 64 * line_words)  # same set as 0
        latency = hierarchy.load(0)
        assert latency == 7  # L2 hit

    def test_prefetch_hides_latency(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.prefetch(9000)
        assert hierarchy.load(9000) == 2
        assert hierarchy.prefetches == 1

    def test_prefetch_can_pollute(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.load(0)
        line_words = 64 // WORD_BYTES
        # Fill the set with prefetches until line 0 is evicted from L1.
        for i in range(1, 5):
            hierarchy.prefetch(i * 64 * line_words)
        assert not hierarchy.would_hit_l1(0)

    def test_store_is_buffered(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        assert hierarchy.store(7777) == 1  # cold store still 1 cycle
        assert hierarchy.load(7777) == 2   # write-allocated into L1

    def test_flush(self):
        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        hierarchy.load(123)
        hierarchy.flush()
        assert hierarchy.load(123) == DEFAULT_EPIC.memory_latency


class TestPredictor:
    def test_initial_prediction_weakly_taken(self):
        predictor = TwoBitPredictor()
        assert predictor.predict(1) is True

    def test_two_not_taken_flip_prediction(self):
        predictor = TwoBitPredictor()
        predictor.update(1, False)
        predictor.update(1, False)
        assert predictor.predict(1) is False

    def test_saturation(self):
        predictor = TwoBitPredictor()
        for _ in range(10):
            predictor.update(1, True)
        predictor.update(1, False)  # one blip
        assert predictor.predict(1) is True  # still taken

    def test_update_returns_correctness(self):
        predictor = TwoBitPredictor()
        assert predictor.update(1, True) is True   # predicted taken
        assert predictor.update(1, False) is False

    def test_accuracy_tracking(self):
        predictor = TwoBitPredictor()
        predictor.update(1, True)
        predictor.update(1, True)
        predictor.update(1, False)
        assert predictor.accuracy_of(1) == pytest.approx(2 / 3)
        assert predictor.stats.predictions == 3
        assert predictor.stats.mispredictions == 1

    def test_branches_independent(self):
        predictor = TwoBitPredictor()
        predictor.update(1, False)
        predictor.update(1, False)
        assert predictor.predict(2) is True

    def test_alternating_branch_poor_accuracy(self):
        predictor = TwoBitPredictor()
        outcomes = [i % 2 == 0 for i in range(100)]
        for taken in outcomes:
            predictor.update(7, taken)
        assert predictor.accuracy_of(7) < 0.6
