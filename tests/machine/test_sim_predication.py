"""Predication corner cases in the timing simulator: guarded calls,
stores, outputs and cmpp — squashed operations must have no
architectural effect, in both execution engines."""

import pytest

from repro.ir.function import Function, GlobalArray, Module
from repro.ir.instr import (
    Opcode,
    Rel,
    binop,
    call,
    cmpp,
    jmp,
    lea,
    mov,
    out,
    ret,
    store,
)
from repro.ir.interp import Interpreter
from repro.ir.values import INT, PRED, Imm, SymRef, VReg
from repro.machine.descr import DEFAULT_EPIC
from repro.machine.sim import Simulator
from repro.passes.schedule import schedule_module


def predicated_module(cond_value: int) -> Module:
    """main: pt,pf = (cond != 0); guarded call/store/out on each arm."""
    module = Module()
    module.add_global(GlobalArray("cell", 2))

    callee = Function("bump", [VReg(0, INT, "x")])
    body = callee.new_block("entry")
    result = callee.new_vreg(INT, "r")
    body.append(binop(Opcode.ADD, result, callee.params[0], Imm(100)))
    body.append(ret(result))
    callee.return_type = INT
    module.add_function(callee)

    func = Function("main", [])
    cond = func.new_vreg(INT, "c")
    pt = func.new_vreg(PRED, "pt")
    pf = func.new_vreg(PRED, "pf")
    called = func.new_vreg(INT, "cl")
    addr = func.new_vreg(INT, "ad")
    val_t = func.new_vreg(INT, "vt")
    val_f = func.new_vreg(INT, "vf")
    entry = func.new_block("entry")
    entry.append(mov(cond, Imm(cond_value)))
    entry.append(mov(called, Imm(-1)))
    entry.append(cmpp(pt, pf, Rel.NE, cond, Imm(0)))
    # Guarded call: only executes on the taken arm.
    entry.append(call(called, "bump", (Imm(5),)))
    entry.instrs[-1].guard = pt
    # Guarded stores to the same cell from both arms.
    entry.append(lea(addr, SymRef("cell")))
    entry.append(mov(val_t, Imm(111)))
    entry.append(mov(val_f, Imm(222)))
    entry.append(store(addr, val_t, guard=pt))
    entry.append(store(addr, val_f, guard=pf))
    # Guarded outs.
    entry.append(out(val_t))
    entry.instrs[-1].guard = pt
    entry.append(out(val_f))
    entry.instrs[-1].guard = pf
    entry.append(out(called))
    entry.append(ret())
    module.add_function(func)
    module.validate()
    return module


def run_both(cond_value: int):
    module = predicated_module(cond_value)
    interp_result = Interpreter(module).run()
    scheduled = schedule_module(module.clone(), DEFAULT_EPIC)
    sim_result = Simulator(scheduled, DEFAULT_EPIC).run()
    return interp_result, sim_result


class TestGuardedEffects:
    def test_taken_arm(self):
        interp_result, sim_result = run_both(1)
        assert interp_result.outputs == [111, 105]
        assert sim_result.output_signature() \
            == interp_result.output_signature()

    def test_fall_arm(self):
        interp_result, sim_result = run_both(0)
        # call squashed: `called` keeps its initial -1
        assert interp_result.outputs == [222, -1]
        assert sim_result.output_signature() \
            == interp_result.output_signature()

    def test_squash_counted_only_in_sim(self):
        module = predicated_module(0)
        scheduled = schedule_module(module.clone(), DEFAULT_EPIC)
        result = Simulator(scheduled, DEFAULT_EPIC).run()
        assert result.squashed_ops >= 3  # call + store + out of taken arm

    def test_memory_state_matches(self):
        for cond_value, expected in ((1, 111), (0, 222)):
            module = predicated_module(cond_value)
            interp = Interpreter(module)
            interp.run()
            assert interp.read_global("cell", 1) == [expected]
            scheduled = schedule_module(module.clone(), DEFAULT_EPIC)
            simulator = Simulator(scheduled, DEFAULT_EPIC)
            simulator.run()
            base = scheduled.module.layout()["cell"]
            assert simulator.memory.get(base) == expected
