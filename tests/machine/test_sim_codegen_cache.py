"""The module-level codegen cache: repeated simulations of the same
binary reuse compiled block code, per-instance state stays isolated,
and results are bit-identical with and without cache hits."""

import pytest

from repro.frontend import compile_source
from repro.machine.descr import DEFAULT_EPIC, MachineDescription
from repro.machine.sim import (
    Simulator,
    clear_codegen_cache,
    codegen_cache_stats,
)
from repro.passes.regalloc import allocate_module
from repro.passes.schedule import schedule_module

SOURCE = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 3) { acc = acc + data[i]; } else { acc = acc - 2; }
  }
  out(acc);
}
"""

INPUTS = {"data": [(i * 7) % 11 for i in range(64)], "n": [60]}


def build():
    module = compile_source(SOURCE)
    allocate_module(module, DEFAULT_EPIC)
    return schedule_module(module, DEFAULT_EPIC)


def simulate(scheduled, machine=DEFAULT_EPIC, **kwargs):
    simulator = Simulator(scheduled, machine, **kwargs)
    for name, values in INPUTS.items():
        simulator.set_global(name, values)
    return simulator.run()


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_codegen_cache()
    yield
    clear_codegen_cache()


class TestCodegenCache:
    def test_second_simulator_hits_cache(self):
        scheduled = build()
        first = simulate(scheduled)
        after_first = codegen_cache_stats()
        assert after_first["misses"] >= 1
        second = simulate(scheduled)
        after_second = codegen_cache_stats()
        assert after_second["hits"] > after_first["hits"]
        assert after_second["misses"] == after_first["misses"]
        assert second.cycles == first.cycles
        assert second.output_signature() == first.output_signature()
        assert second.branch_stall_cycles == first.branch_stall_cycles
        assert second.memory_stall_cycles == first.memory_stall_cycles

    def test_recompiled_binary_hits_cache(self):
        # A fresh compile of the same source produces new Instr uids;
        # the cache must still recognise the binary as identical.
        first = simulate(build())
        second = simulate(build())
        stats = codegen_cache_stats()
        assert stats["hits"] >= 1
        assert first.cycles == second.cycles
        assert first.output_signature() == second.output_signature()

    def test_instance_state_not_shared(self):
        scheduled = build()
        sim_a = Simulator(scheduled, DEFAULT_EPIC)
        sim_b = Simulator(scheduled, DEFAULT_EPIC)
        for name, values in INPUTS.items():
            sim_a.set_global(name, values)
        sim_b.set_global("data", [0] * 64)
        sim_b.set_global("n", [60])
        result_a = sim_a.run()
        result_b = sim_b.run()
        # Same compiled code, different memory/caches/predictor state.
        assert result_a.outputs != result_b.outputs
        assert sim_a.memory is not sim_b.memory

    def test_machine_constants_bound_per_instance(self):
        # The generated source is machine-independent (L1 latency and
        # mispredict penalty bind at Simulator construction), so two
        # machines share one cache entry yet disagree on timing.
        scheduled = build()
        slow_branches = MachineDescription(name="slow-branches",
                                           mispredict_penalty=50)
        fast = simulate(scheduled)
        entries_after_first = codegen_cache_stats()["entries"]
        slow = simulate(scheduled, machine=slow_branches)
        assert codegen_cache_stats()["entries"] == entries_after_first
        assert slow.output_signature() == fast.output_signature()
        assert slow.cycles > fast.cycles

    def test_noise_still_per_instance(self):
        scheduled = build()
        clean = simulate(scheduled)
        noisy = simulate(scheduled, noise_stddev=0.3, noise_seed=7)
        noisy_again = simulate(scheduled, noise_stddev=0.3, noise_seed=7)
        assert noisy.cycles == noisy_again.cycles  # seeded => reproducible
        assert noisy.output_signature() == clean.output_signature()

    def test_clear_resets_stats(self):
        simulate(build())
        clear_codegen_cache()
        stats = codegen_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}
