"""Property-based cache tests: the set-associative LRU model agrees
with a naive reference simulation on arbitrary access traces."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.machine.cache import CacheLevel
from repro.machine.descr import CacheLevelConfig


class ReferenceLRU:
    """Obviously-correct model: per-set ordered dicts over line ids."""

    def __init__(self, sets, assoc, line_bytes):
        self.sets = sets
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.state = [OrderedDict() for _ in range(sets)]

    def access(self, addr):
        line = addr // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        cache_set = self.state[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[tag] = None
        return False


CONFIG = CacheLevelConfig("t", 1024, 64, 2, 1)  # 8 sets, 2-way
SETS = 1024 // (64 * 2)

addresses = st.lists(
    st.integers(min_value=0, max_value=64 * 64 * 4),
    min_size=1, max_size=200,
)


class TestLRUEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(addresses)
    def test_hit_miss_sequence_matches_reference(self, trace):
        level = CacheLevel(CONFIG)
        reference = ReferenceLRU(SETS, CONFIG.assoc, CONFIG.line_bytes)
        for addr in trace:
            hit = level.access(addr)
            if not hit:
                level.fill(addr)
            assert hit == reference.access(addr), trace

    @settings(max_examples=50, deadline=None)
    @given(addresses)
    def test_occupancy_bounded_by_associativity(self, trace):
        level = CacheLevel(CONFIG)
        for addr in trace:
            if not level.access(addr):
                level.fill(addr)
        for cache_set in level._sets:
            assert len(cache_set) <= CONFIG.assoc

    @settings(max_examples=50, deadline=None)
    @given(addresses)
    def test_stats_consistent(self, trace):
        level = CacheLevel(CONFIG)
        for addr in trace:
            if not level.access(addr):
                level.fill(addr)
        stats = level.stats
        assert stats.accesses == len(trace)
        assert stats.hits + stats.misses == stats.accesses


class TestHierarchyProperties:
    @settings(max_examples=50, deadline=None)
    @given(addresses)
    def test_latency_is_one_of_the_levels(self, trace):
        from repro.machine.cache import CacheHierarchy
        from repro.machine.descr import DEFAULT_EPIC

        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        valid = {c.latency for c in DEFAULT_EPIC.cache_levels}
        valid.add(DEFAULT_EPIC.memory_latency)
        for addr in trace:
            assert hierarchy.load(addr) in valid

    @settings(max_examples=50, deadline=None)
    @given(addresses)
    def test_repeat_load_is_l1_hit(self, trace):
        from repro.machine.cache import CacheHierarchy
        from repro.machine.descr import DEFAULT_EPIC

        hierarchy = CacheHierarchy(DEFAULT_EPIC)
        for addr in trace:
            hierarchy.load(addr)
            assert hierarchy.load(addr) \
                == DEFAULT_EPIC.cache_levels[0].latency
