"""Timing-simulator tests: functional equivalence with the reference
interpreter, cycle accounting for stalls/mispredicts/squashes, and
measurement-noise behaviour."""

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.machine.descr import DEFAULT_EPIC
from repro.machine.sim import SimError, Simulator
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare
from repro.passes.regalloc import allocate_module
from repro.passes.schedule import schedule_module


def build(source, inputs=None, allocate=True):
    module = compile_source(source)
    if allocate:
        allocate_module(module, DEFAULT_EPIC)
    scheduled = schedule_module(module, DEFAULT_EPIC)
    return scheduled


def simulate(scheduled, inputs=None, **kwargs):
    simulator = Simulator(scheduled, DEFAULT_EPIC, **kwargs)
    for name, values in (inputs or {}).items():
        simulator.set_global(name, values)
    return simulator.run()


def reference(source, inputs=None):
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run()


LOOP_SOURCE = """
int data[128];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 4) { acc = acc + data[i]; } else { acc = acc - 1; }
  }
  out(acc);
}
"""

LOOP_INPUTS = {"data": [(i * 13) % 9 for i in range(128)], "n": [100]}


class TestEquivalence:
    def test_loop_program(self):
        ref = reference(LOOP_SOURCE, LOOP_INPUTS)
        result = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        assert result.output_signature() == ref.output_signature()

    def test_calls_and_floats(self):
        source = """
        float scale;
        float poly(float x) { return x * x + 2.0 * x + 1.0; }
        void main() {
          float total = 0.0;
          int i;
          for (i = 0; i < 20; i = i + 1) {
            total = total + poly(i * scale);
          }
          out(total);
        }
        """
        inputs = {"scale": [0.25]}
        ref = reference(source, inputs)
        result = simulate(build(source), inputs)
        assert result.output_signature() == ref.output_signature()

    def test_division_fault_propagates(self):
        source = "void main() { int z = 0; out(7 / z); }"
        with pytest.raises(SimError):
            simulate(build(source))

    def test_unscheduled_entry_rejected(self):
        scheduled = build(LOOP_SOURCE)
        simulator = Simulator(scheduled, DEFAULT_EPIC)
        with pytest.raises(SimError):
            simulator.run(entry="ghost")

    def test_cycle_budget(self):
        scheduled = build(LOOP_SOURCE)
        simulator = Simulator(scheduled, DEFAULT_EPIC, max_cycles=10)
        for name, values in LOOP_INPUTS.items():
            simulator.set_global(name, values)
        with pytest.raises(SimError):
            simulator.run()


class TestCycleAccounting:
    def test_cycles_positive_and_decomposable(self):
        result = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        assert result.cycles > 0
        assert result.cycles >= result.bundles
        assert result.cycles == result.bundles + result.memory_stall_cycles \
            + result.branch_stall_cycles

    def test_memory_stalls_counted(self):
        # 128 cold loads with a long stride: every line misses.
        source = """
        int data[4096];
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < 4096; i = i + 32) { acc = acc + data[i]; }
          out(acc);
        }
        """
        result = simulate(build(source))
        assert result.memory_stall_cycles > 100

    def test_branch_stalls_on_unpredictable_branch(self):
        source = """
        int data[128];
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < 128; i = i + 1) {
            if (data[i] == 1) { acc = acc + 3; } else { acc = acc - 1; }
          }
          out(acc);
        }
        """
        alternating = {"data": [i % 2 for i in range(128)]}
        result = simulate(build(source), alternating)
        assert result.branch_stall_cycles >= 40 * DEFAULT_EPIC.mispredict_penalty
        assert result.branch_accuracy < 0.9

    def test_dynamic_op_count(self):
        ref = reference(LOOP_SOURCE, LOOP_INPUTS)
        result = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        # The scheduled module runs the same instruction mix; dynamic op
        # count is within scheduling/cleanup noise of interpreter steps.
        assert result.dynamic_ops > 0.5 * ref.steps

    def test_squashed_ops_counted_for_predicated_code(self):
        options = CompilerOptions(machine=DEFAULT_EPIC)
        module = compile_source(LOOP_SOURCE)
        prepared = prepare(module, LOOP_INPUTS, options)
        scheduled, report = compile_backend(
            prepared,
            options.with_priorities(hyperblock_priority=lambda env: 1.0),
        )
        assert any(r.regions_converted
                   for r in report.hyperblock.values())
        result = simulate(scheduled, LOOP_INPUTS)
        assert result.squashed_ops > 0
        ref = reference(LOOP_SOURCE, LOOP_INPUTS)
        assert result.output_signature() == ref.output_signature()


class TestNoise:
    def test_zero_noise_deterministic(self):
        first = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        second = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        assert first.cycles == second.cycles

    def test_noise_perturbs_cycles(self):
        base = simulate(build(LOOP_SOURCE), LOOP_INPUTS)
        noisy = simulate(build(LOOP_SOURCE), LOOP_INPUTS,
                         noise_stddev=0.05, noise_seed=3)
        assert noisy.cycles != base.cycles
        # ...but stays within a few standard deviations.
        assert abs(noisy.cycles - base.cycles) < 0.5 * base.cycles

    def test_noise_reproducible_per_seed(self):
        first = simulate(build(LOOP_SOURCE), LOOP_INPUTS,
                         noise_stddev=0.05, noise_seed=11)
        second = simulate(build(LOOP_SOURCE), LOOP_INPUTS,
                          noise_stddev=0.05, noise_seed=11)
        third = simulate(build(LOOP_SOURCE), LOOP_INPUTS,
                         noise_stddev=0.05, noise_seed=12)
        assert first.cycles == second.cycles
        assert first.cycles != third.cycles

    def test_noise_does_not_change_outputs(self):
        ref = reference(LOOP_SOURCE, LOOP_INPUTS)
        noisy = simulate(build(LOOP_SOURCE), LOOP_INPUTS,
                         noise_stddev=0.1, noise_seed=5)
        assert noisy.output_signature() == ref.output_signature()
