"""Differential fuzzing of the whole compiler.

A bounded random-program generator emits MiniC programs exercising
arithmetic, nested control flow, arrays, and function calls; each is
run under the reference interpreter and the optimized pipeline + cycle
simulator, under several hyperblock/spill priority policies, and the
observable outputs must agree exactly.
"""

import random

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.machine.descr import DEFAULT_EPIC, MachineDescription
from repro.machine.sim import Simulator
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare


class ProgramGenerator:
    """Generates small, terminating, fault-free MiniC programs."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self._var_counter = 0

    def fresh(self) -> str:
        self._var_counter += 1
        return f"v{self._var_counter}"

    def expr(self, vars_in_scope, depth=0) -> str:
        roll = self.rng.random()
        if depth > 2 or roll < 0.3 or not vars_in_scope:
            return str(self.rng.randint(-9, 9))
        if roll < 0.6:
            return self.rng.choice(vars_in_scope)
        op = self.rng.choice(["+", "-", "*"])
        left = self.expr(vars_in_scope, depth + 1)
        right = self.expr(vars_in_scope, depth + 1)
        return f"({left} {op} {right})"

    def condition(self, vars_in_scope) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return (f"{self.expr(vars_in_scope)} {op} "
                f"{self.expr(vars_in_scope)}")

    def statements(self, vars_in_scope, depth, budget) -> list[str]:
        lines = []
        local_scope = list(vars_in_scope)
        count = self.rng.randint(1, 4)
        for _ in range(count):
            if budget[0] <= 0:
                break
            budget[0] -= 1
            kind = self.rng.random()
            if kind < 0.35 or not local_scope:
                name = self.fresh()
                lines.append(f"int {name} = {self.expr(local_scope)};")
                local_scope.append(name)
            elif kind < 0.6:
                target = self.rng.choice(local_scope)
                lines.append(f"{target} = {self.expr(local_scope)};")
            elif kind < 0.8 and depth < 2:
                inner = self.statements(local_scope, depth + 1, budget)
                if self.rng.random() < 0.5:
                    lines.append(f"if ({self.condition(local_scope)}) {{")
                    lines.extend("  " + l for l in inner)
                    lines.append("}")
                else:
                    other = self.statements(local_scope, depth + 1, budget)
                    lines.append(f"if ({self.condition(local_scope)}) {{")
                    lines.extend("  " + l for l in inner)
                    lines.append("} else {")
                    lines.extend("  " + l for l in other)
                    lines.append("}")
            elif kind < 0.9 and depth < 2:
                # bounded counted loop
                index = self.fresh()
                bound = self.rng.randint(2, 8)
                inner = self.statements(local_scope + [index],
                                        depth + 1, budget)
                lines.append(f"int {index};")
                lines.append(
                    f"for ({index} = 0; {index} < {bound}; "
                    f"{index} = {index} + 1) {{"
                )
                lines.extend("  " + l for l in inner)
                lines.append("}")
            else:
                lines.append(f"out({self.expr(local_scope)});")
        return lines

    def program(self) -> str:
        budget = [30]
        body = self.statements([], 0, budget)
        outs = "\n  ".join(body)
        # Always observe something deterministic at the end.
        return (
            "int sink[8];\n"
            "void main() {\n  "
            f"{outs}\n"
            "  int k;\n"
            "  int total = 0;\n"
            "  for (k = 0; k < 8; k = k + 1) {\n"
            "    sink[k] = k * 3;\n"
            "    total = total + sink[k];\n"
            "  }\n"
            "  out(total);\n"
            "}\n"
        )


def run_reference(source):
    module = compile_source(source)
    return Interpreter(module).run()


def run_pipeline(source, options):
    module = compile_source(source)
    prepared = prepare(module, {}, options)
    scheduled, _report = compile_backend(prepared)
    return Simulator(scheduled, options.machine).run()


SMALL_MACHINE = MachineDescription(name="fuzz-small", gp_registers=8,
                                   fp_registers=8)

POLICIES = [
    ("default", CompilerOptions(machine=DEFAULT_EPIC)),
    ("always-convert", CompilerOptions(
        machine=DEFAULT_EPIC).with_priorities(
            hyperblock_priority=lambda env: 1.0)),
    ("never-convert", CompilerOptions(
        machine=DEFAULT_EPIC).with_priorities(
            hyperblock_priority=lambda env: -1.0)),
    ("tiny-registers", CompilerOptions(machine=SMALL_MACHINE)),
]


@pytest.mark.parametrize("seed", range(25))
def test_random_program_equivalence(seed):
    source = ProgramGenerator(seed).program()
    ref = run_reference(source)
    for label, options in POLICIES:
        result = run_pipeline(source, options)
        assert result.output_signature() == ref.output_signature(), (
            f"seed {seed}, policy {label}:\n{source}"
        )


def test_generator_produces_varied_programs():
    sources = {ProgramGenerator(seed).program() for seed in range(10)}
    assert len(sources) == 10
