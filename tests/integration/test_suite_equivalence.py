"""End-to-end validation: for every suite benchmark, the fully
optimized, scheduled, register-allocated binary produces exactly the
reference interpreter's outputs — on both datasets.

This is the master correctness gate for the whole compiler: it
exercises inlining, unrolling, cleanup, if-conversion, prefetching,
spilling and scheduling together.
"""

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.machine.descr import DEFAULT_EPIC, ITANIUM_MACHINE, REGALLOC_MACHINE
from repro.machine.sim import Simulator
from repro.passes.pipeline import CompilerOptions, compile_backend, prepare
from repro.suite import all_benchmarks, get

#: A cross-section of the suite: every program family, both categories.
FAST_BENCHMARKS = (
    "codrle4", "decodrle4", "huff_enc", "huff_dec", "rawcaudio",
    "rawdaudio", "g721encode", "g721decode", "mpeg2dec", "toast",
    "129.compress", "124.m88ksim", "130.li", "147.vortex", "085.cc1",
    "023.eqntott", "unepic", "mipmap", "osdemo", "rasta",
    "146.wave5", "183.equake", "178.galgel", "189.lucas",
)


def reference(bench, dataset):
    module = compile_source(bench.source, bench.name)
    interp = Interpreter(module)
    for name, values in bench.inputs(dataset).items():
        interp.set_global(name, values)
    return interp.run()


def compiled(bench, options):
    module = compile_source(bench.source, bench.name)
    prepared = prepare(module, bench.inputs("train"), options)
    scheduled, _report = compile_backend(prepared)
    return scheduled


def simulate(scheduled, machine, bench, dataset):
    simulator = Simulator(scheduled, machine)
    for name, values in bench.inputs(dataset).items():
        simulator.set_global(name, values)
    return simulator.run()


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
def test_default_pipeline_equivalence(name):
    bench = get(name)
    options = CompilerOptions(machine=DEFAULT_EPIC)
    scheduled = compiled(bench, options)
    for dataset in ("train", "novel"):
        ref = reference(bench, dataset)
        result = simulate(scheduled, DEFAULT_EPIC, bench, dataset)
        assert result.output_signature() == ref.output_signature(), \
            f"{name}/{dataset}"
        assert result.cycles > 0


@pytest.mark.parametrize("name", ("129.compress", "huff_enc", "g721encode",
                                  "huff_dec", "mpeg2dec"))
def test_regalloc_machine_equivalence(name):
    """The 12-register machine forces spilling on most of these."""
    bench = get(name)
    options = CompilerOptions(machine=REGALLOC_MACHINE)
    scheduled = compiled(bench, options)
    ref = reference(bench, "train")
    result = simulate(scheduled, REGALLOC_MACHINE, bench, "train")
    assert result.output_signature() == ref.output_signature()


@pytest.mark.parametrize("name", ("102.swim", "107.mgrid", "146.wave5",
                                  "183.equake", "178.galgel", "301.apsi"))
def test_prefetch_pipeline_equivalence(name):
    bench = get(name)
    options = CompilerOptions(machine=ITANIUM_MACHINE, prefetch=True)
    scheduled = compiled(bench, options)
    ref = reference(bench, "train")
    result = simulate(scheduled, ITANIUM_MACHINE, bench, "train")
    assert result.output_signature() == ref.output_signature()


def test_every_benchmark_compiles_through_backend():
    """All ~40 benchmarks survive the full pipeline (no simulation —
    that is covered by the sampled equivalence tests above)."""
    for name, bench in sorted(all_benchmarks().items()):
        options = CompilerOptions(
            machine=ITANIUM_MACHINE if bench.category == "fp"
            else DEFAULT_EPIC,
            prefetch=bench.category == "fp",
        )
        module = compile_source(bench.source, name)
        prepared = prepare(module, bench.inputs("train"), options)
        scheduled, _report = compile_backend(prepared)
        scheduled.validate()
