"""Span tracer: Chrome trace_event output and the module-level API."""

import json
import os
import threading
import time

from repro import obs
from repro.obs.trace import Tracer


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", args={"n": 3}):
            time.sleep(0.001)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 1000.0  # microseconds
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["args"] == {"n": 3}

    def test_nested_spans_are_time_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # inner exits (and records) first
        assert outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_span_records_even_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("marker", args={"k": 1})
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["s"] == "t"

    def test_chrome_trace_shape_and_ordering(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        trace = tracer.chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        timestamps = [event["ts"] for event in trace["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_write_produces_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "a"

    def test_thread_safety(self):
        tracer = Tracer()

        def work():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 200


class TestModuleApi:
    def teardown_method(self):
        obs.disable_tracing()
        obs.disable_metrics()

    def test_disabled_span_is_shared_noop(self):
        first = obs.span("anything")
        second = obs.span("other")
        assert first is second  # the reusable nullcontext
        with first:
            pass

    def test_disabled_metric_helpers_noop(self):
        obs.inc("x")
        obs.set_gauge("y", 1)
        obs.observe("z", 0.5)
        assert obs.metrics() is None

    def test_enable_disable_round_trip(self):
        tracer = obs.enable_tracing()
        assert obs.tracing_enabled()
        with obs.span("live"):
            pass
        assert len(tracer) == 1
        assert obs.disable_tracing() is tracer
        assert not obs.tracing_enabled()

    def test_enable_is_idempotent(self):
        tracer = obs.enable_tracing()
        assert obs.enable_tracing() is tracer
        registry = obs.enable_metrics()
        assert obs.enable_metrics() is registry

    def test_enabled_reflects_either_side(self):
        assert not obs.enabled()
        obs.enable_metrics()
        assert obs.enabled()
        obs.disable_metrics()
        obs.enable_tracing()
        assert obs.enabled()

    def test_custom_instances_installable(self):
        mine = Tracer()
        assert obs.enable_tracing(mine) is mine
        assert obs.tracer() is mine
