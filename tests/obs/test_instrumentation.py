"""The instrumented subsystems feed the observability layer.

These tests pin the span names and metric names that
``docs/OBSERVABILITY.md`` documents and the ``repro profile`` tables
read — renaming an instrument is a docs change, not a refactor.
"""

import pytest

from repro import obs
from repro.frontend import compile_source
from repro.machine.descr import DEFAULT_EPIC
from repro.machine.sim import Simulator
from repro.passes.pipeline import compile_backend, prepare
from repro.suite.registry import get as get_benchmark

PIPELINE_SPANS = {"pipeline:prepare", "pipeline:backend"}
PASS_SPANS = {"pass:inline", "pass:cleanup", "pass:unroll", "pass:profile",
              "pass:hyperblock", "pass:regalloc", "pass:schedule"}


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_tracing()
    obs.disable_metrics()


def compile_and_simulate(benchmark="codrle4"):
    bench = get_benchmark(benchmark)
    module = compile_source(bench.source, bench.name)
    prepared = prepare(module, bench.inputs("train"))
    scheduled, _ = compile_backend(prepared)
    simulator = Simulator(scheduled, DEFAULT_EPIC)
    for name, values in bench.inputs("train").items():
        simulator.set_global(name, values)
    return simulator.run()


def contained(child, parents):
    return any(p["ts"] <= child["ts"] and
               child["ts"] + child["dur"] <= p["ts"] + p["dur"]
               for p in parents)


class TestPipelineAndSimulator:
    def test_spans_cover_pipeline_passes_and_sim(self):
        tracer = obs.enable_tracing()
        compile_and_simulate()
        names = {event["name"] for event in tracer.events}
        assert PIPELINE_SPANS <= names
        assert PASS_SPANS <= names
        assert "sim:run" in names

    def test_pass_spans_nest_inside_pipeline_spans(self):
        tracer = obs.enable_tracing()
        compile_and_simulate()
        events = tracer.chrome_trace()["traceEvents"]
        pipeline = [e for e in events if e["name"] in PIPELINE_SPANS]
        passes = [e for e in events if e["name"].startswith("pass:")]
        assert passes
        for event in passes:
            assert contained(event, pipeline), event["name"]

    def test_pipeline_metrics(self):
        registry = obs.enable_metrics()
        compile_and_simulate()
        snapshot = registry.snapshot()
        for stage in ("inline", "cleanup", "unroll", "profile",
                      "hyperblock", "regalloc", "schedule"):
            assert snapshot["counters"][f"pipeline.pass_runs.{stage}"] >= 1
            assert f"pipeline.ir_delta.{stage}" in snapshot["counters"]
            histogram = snapshot["histograms"][
                f"pipeline.pass_seconds.{stage}"]
            assert histogram["count"] >= 1
            assert histogram["sum"] > 0

    def test_simulator_metrics(self):
        registry = obs.enable_metrics()
        result = compile_and_simulate()
        counters = registry.snapshot()["counters"]
        assert counters["sim.runs"] == 1
        assert counters["sim.cycles"] == result.cycles
        assert counters["sim.dynamic_ops"] == result.dynamic_ops
        assert counters["sim.loads"] == result.load_count
        assert counters["sim.l1_hits"] + counters["sim.l1_misses"] > 0
        # the codegen cache is module-global and may already be warm
        # from earlier tests; either way every call was counted.
        codegen = counters.get("sim.codegen_hits", 0) + \
            counters.get("sim.codegen_misses", 0)
        assert codegen >= 1

    def test_disabled_observability_records_nothing(self):
        compile_and_simulate()
        assert obs.tracer() is None
        assert obs.metrics() is None


class TestEngineInstrumentation:
    def run_tiny_engine(self):
        from repro.gp.engine import GPEngine, GPParams
        from repro.metaopt.harness import EvaluationHarness, case_study

        case = case_study("hyperblock")
        harness = EvaluationHarness(case)
        engine = GPEngine(
            pset=case.pset,
            evaluator=harness.evaluator("train"),
            benchmarks=("codrle4",),
            params=GPParams(population_size=6, generations=2, seed=3),
            seed_trees=(case.baseline_tree(),),
        )
        return engine.run()

    def test_engine_spans_nest(self):
        tracer = obs.enable_tracing()
        self.run_tiny_engine()
        events = tracer.chrome_trace()["traceEvents"]
        generations = [e for e in events if e["name"] == "engine:generation"]
        evaluations = [e for e in events if e["name"] == "engine:evaluation"]
        breeds = [e for e in events if e["name"] == "engine:breed"]
        assert len(generations) == 2
        assert len(evaluations) == 2
        assert len(breeds) == 1  # final generation does not breed
        for child in evaluations + breeds:
            assert contained(child, generations)

    def test_engine_metrics(self):
        registry = obs.enable_metrics()
        result = self.run_tiny_engine()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["gp.evaluations"] == result.evaluations
        assert snapshot["counters"]["gp.crossovers"] >= 1
        assert snapshot["histograms"]["gp.eval_seconds"]["count"] == 2
        assert snapshot["histograms"]["gp.breed_seconds"]["count"] == 1
        gauges = snapshot["gauges"]
        assert gauges["gp.population_size"] == 6
        assert gauges["gp.best_fitness"] > 0
        assert gauges["gp.memo_size"] > 0


class TestParallelMerging:
    @pytest.fixture(autouse=True)
    def fresh_worker_globals(self, monkeypatch):
        """The prewarm harness lives in module globals so forked
        workers inherit it copy-on-write; an earlier test may have
        left it warm, which would hide the parent-side compiles these
        tests count.  monkeypatch restores the warm state afterwards."""
        from repro.metaopt import parallel

        monkeypatch.setattr(parallel, "_WORKER_HARNESS", None)
        monkeypatch.setattr(parallel, "_WORKER_CASE", None)
        monkeypatch.setattr(parallel, "_WORKER_SIGNATURE", None)

    def test_worker_metrics_merge_without_double_counting(self):
        from repro.metaopt.baselines import BASELINE_TREES
        from repro.metaopt.parallel import ParallelEvaluator

        registry = obs.enable_metrics()
        tree = BASELINE_TREES["hyperblock"]()
        with ParallelEvaluator("hyperblock", processes=2) as evaluator:
            evaluator.evaluate_batch(
                [(tree, "codrle4"), (tree, "rawcaudio")])
        counters = registry.snapshot()["counters"]
        # prewarm runs baseline compile+sim once per benchmark in the
        # parent; the workers' memoized lookups must not re-add them.
        assert counters["harness.compiles"] == 2
        assert counters["harness.sims"] == 2
        assert counters["sim.runs"] == 2
        assert counters["parallel.jobs"] == 2
        assert counters["parallel.batches"] == 1

    def test_worker_fresh_work_is_merged(self):
        from repro.gp.parse import parse
        from repro.metaopt.psets import PSETS
        from repro.metaopt.parallel import ParallelEvaluator

        registry = obs.enable_metrics()
        pset = PSETS["hyperblock"]
        candidate = parse("(mul 2.0000 num_ops)", pset.bool_feature_set())
        with ParallelEvaluator("hyperblock", processes=2) as evaluator:
            evaluator.evaluate_batch([(candidate, "codrle4")])
        counters = registry.snapshot()["counters"]
        # baseline (prewarm, parent) + candidate (worker) compiles both
        # land in the parent registry.
        assert counters["harness.compiles"] == 2
        assert counters["sim.runs"] == 2

    def test_serial_path_needs_no_merging(self):
        from repro.metaopt.baselines import BASELINE_TREES
        from repro.metaopt.parallel import ParallelEvaluator

        registry = obs.enable_metrics()
        tree = BASELINE_TREES["hyperblock"]()
        with ParallelEvaluator("hyperblock", processes=1) as evaluator:
            evaluator.evaluate_batch([(tree, "codrle4")])
        counters = registry.snapshot()["counters"]
        assert counters["harness.compiles"] == 1
        assert counters["sim.runs"] == 1
