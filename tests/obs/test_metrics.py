"""Metrics registry: instruments, snapshots, and the merge algebra."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)


class TestInstruments:
    def test_counter_sums(self):
        registry = MetricsRegistry()
        registry.inc("jobs")
        registry.inc("jobs", 4)
        assert registry.counter("jobs").value == 5

    def test_counter_accepts_negative_increments(self):
        registry = MetricsRegistry()
        registry.inc("ir_delta", -7)
        registry.inc("ir_delta", 3)
        assert registry.counter("ir_delta").value == -4

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("best", 1.2)
        registry.set_gauge("best", 1.1)
        assert registry.gauge("best").value == 1.1

    def test_histogram_buckets_observations(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.0)
        assert histogram.mean == pytest.approx(26.25)

    def test_histogram_boundary_goes_to_lower_bucket(self):
        histogram = Histogram("t", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.counts == [1, 0, 0]

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())
        with pytest.raises(ValueError):
            Histogram("t", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", buckets=(1.0, 1.0))

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == \
            sorted(set(DEFAULT_TIME_BUCKETS))

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestSnapshots:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.inc("sims", 3)
        registry.set_gauge("best", 1.5)
        registry.observe("secs", 0.2, buckets=(0.1, 1.0))
        return registry

    def test_snapshot_is_plain_json_data(self):
        import json

        snapshot = self.make_registry().snapshot()
        json.dumps(snapshot)
        assert snapshot["counters"] == {"sims": 3}
        assert snapshot["gauges"] == {"best": 1.5}
        assert snapshot["histograms"]["secs"]["counts"] == [0, 1, 0]

    def test_snapshot_is_a_copy(self):
        registry = self.make_registry()
        snapshot = registry.snapshot()
        registry.inc("sims")
        registry.observe("secs", 0.05, buckets=(0.1, 1.0))
        assert snapshot["counters"]["sims"] == 3
        assert snapshot["histograms"]["secs"]["count"] == 1

    def test_merge_adds_counters_and_histograms(self):
        first = self.make_registry()
        second = self.make_registry()
        first.merge_snapshot(second.snapshot())
        assert first.counter("sims").value == 6
        histogram = first.histogram("secs")
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(0.4)
        assert histogram.counts == [0, 2, 0]

    def test_merge_gauges_last_write_win(self):
        first = self.make_registry()
        first.merge_snapshot({"gauges": {"best": 2.5}})
        assert first.gauge("best").value == 2.5

    def test_merge_rejects_mismatched_buckets(self):
        registry = self.make_registry()
        with pytest.raises(ValueError):
            registry.merge_snapshot({
                "histograms": {"secs": {"buckets": [0.5, 2.0],
                                        "counts": [0, 1, 0],
                                        "sum": 0.2, "count": 1}},
            })


class TestDiffSnapshots:
    def test_diff_then_merge_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("sims", 2)
        registry.observe("secs", 0.2, buckets=(0.1, 1.0))
        before = registry.snapshot()
        registry.inc("sims", 3)
        registry.inc("compiles")
        registry.set_gauge("best", 1.4)
        registry.observe("secs", 0.05, buckets=(0.1, 1.0))
        after = registry.snapshot()

        delta = diff_snapshots(before, after)
        assert delta["counters"] == {"sims": 3, "compiles": 1}
        assert delta["histograms"]["secs"]["count"] == 1
        assert delta["histograms"]["secs"]["counts"] == [1, 0, 0]

        replay = MetricsRegistry()
        replay.merge_snapshot(before)
        replay.merge_snapshot(delta)
        assert replay.snapshot()["counters"] == after["counters"]
        assert replay.snapshot()["histograms"] == after["histograms"]

    def test_diff_drops_idle_instruments(self):
        registry = MetricsRegistry()
        registry.inc("sims", 2)
        registry.observe("secs", 0.2)
        before = registry.snapshot()
        registry.inc("compiles")
        delta = diff_snapshots(before, registry.snapshot())
        assert "sims" not in delta["counters"]
        assert "secs" not in delta["histograms"]

    def test_diff_against_empty_baseline(self):
        registry = MetricsRegistry()
        registry.inc("sims", 2)
        registry.observe("secs", 0.2)
        delta = diff_snapshots({}, registry.snapshot())
        assert delta["counters"] == {"sims": 2}
        assert delta["histograms"]["secs"]["count"] == 1
