"""Top-level facade (repro.compiler) and reporting helpers."""

import pytest

from repro.compiler import compile_and_run, compile_program, interpret
from repro.machine.descr import ITANIUM_MACHINE
from repro.passes.pipeline import CompilerOptions
from repro.reporting import (
    averages_line,
    fitness_curve_chart,
    geometric_mean,
    single_column_table,
    speedup_table,
)

SOURCE = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] % 2 == 0) { acc = acc + data[i]; }
  }
  out(acc);
}
"""

INPUTS = {"data": list(range(64)), "n": [60]}


class TestFacade:
    def test_interpret(self):
        result = interpret(SOURCE, INPUTS)
        assert result.outputs == [sum(i for i in range(60) if i % 2 == 0)]

    def test_compile_and_run_matches_interpreter(self):
        sim = compile_and_run(SOURCE, INPUTS)
        ref = interpret(SOURCE, INPUTS)
        assert sim.output_signature() == ref.output_signature()
        assert sim.cycles > 0

    def test_compiled_program_reusable_across_datasets(self):
        program = compile_program(SOURCE, profile_inputs=INPUTS)
        first = program.run(INPUTS)
        other_inputs = {"data": [3] * 64, "n": [64]}
        second = program.run(other_inputs)
        assert first.outputs != second.outputs
        assert second.output_signature() \
            == interpret(SOURCE, other_inputs).output_signature()

    def test_options_respected(self):
        options = CompilerOptions(machine=ITANIUM_MACHINE, prefetch=True)
        program = compile_program(SOURCE, profile_inputs=INPUTS,
                                  options=options)
        assert program.options.machine is ITANIUM_MACHINE

    def test_noise_passthrough(self):
        program = compile_program(SOURCE, profile_inputs=INPUTS)
        clean = program.run(INPUTS)
        noisy = program.run(INPUTS, noise_stddev=0.05, noise_seed=1)
        assert noisy.cycles != clean.cycles
        assert noisy.outputs == clean.outputs

    def test_report_exposed(self):
        program = compile_program(SOURCE, profile_inputs=INPUTS)
        assert "main" in program.report.regalloc


class TestReporting:
    def test_speedup_table_includes_average(self):
        table = speedup_table("T", [("a", 1.2, 1.1), ("b", 1.0, 0.9)])
        assert "Average" in table
        assert "1.100" in table  # (1.2 + 1.0) / 2
        assert table.splitlines()[0] == "T"

    def test_speedup_table_alignment(self):
        table = speedup_table("T", [("verylongbenchname", 1.0, 1.0)])
        rows = table.splitlines()
        assert len(rows) == 4

    def test_single_column_table(self):
        table = single_column_table("T", [("x", 2.0), ("y", 4.0)])
        assert "3.000" in table

    def test_fitness_curve_chart(self):
        chart = fitness_curve_chart("C", [1.0, 1.1, 1.3])
        lines = chart.splitlines()
        assert lines[0] == "C"
        assert len([l for l in lines if l.startswith("gen")]) == 3
        # monotone curve: bar lengths monotone
        bars = [l.count("#") for l in lines if l.startswith("gen")]
        assert bars == sorted(bars)

    def test_fitness_curve_empty(self):
        assert "no generations" in fitness_curve_chart("C", [])

    def test_fitness_curve_flat(self):
        chart = fitness_curve_chart("C", [1.0, 1.0])
        assert "gen   1" in chart

    def test_averages_line(self):
        assert averages_line("x", [1.0, 3.0]) == "x: 2.000 (n=2)"

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)
