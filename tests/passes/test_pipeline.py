"""Pipeline driver: prepare/backend split, option plumbing, and
end-to-end equivalence."""

import dataclasses

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.machine.descr import DEFAULT_EPIC, ITANIUM_MACHINE
from repro.machine.sim import Simulator
from repro.passes.hyperblock import impact_priority
from repro.passes.pipeline import (
    CompilerOptions,
    compile_backend,
    compile_module,
    prepare,
)
from repro.passes.prefetch import never_prefetch, orc_confidence
from repro.passes.regalloc import chow_hennessy_savings

SOURCE = """
int data[256];
int n;
int weight(int x) { return x * 3 - 1; }
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 6) { acc = acc + weight(data[i]); } else { acc = acc - 1; }
  }
  out(acc);
}
"""

INPUTS = {"data": [(i * 37) % 13 for i in range(256)], "n": [200]}


def reference(source=SOURCE, inputs=INPUTS):
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.set_global(name, values)
    return interp.run()


def simulate(scheduled, machine, inputs=INPUTS):
    simulator = Simulator(scheduled, machine)
    for name, values in inputs.items():
        simulator.set_global(name, values)
    return simulator.run()


class TestOptions:
    def test_defaults(self):
        options = CompilerOptions()
        assert options.machine is DEFAULT_EPIC
        assert options.hyperblock is True
        assert options.prefetch is False
        assert options.hyperblock_priority is impact_priority
        assert options.spill_priority is chow_hennessy_savings
        assert options.prefetch_priority is orc_confidence

    def test_with_priorities_swaps_only_given_hooks(self):
        options = CompilerOptions()
        swapped = options.with_priorities(prefetch_priority=never_prefetch)
        assert swapped.prefetch_priority is never_prefetch
        assert swapped.hyperblock_priority is impact_priority
        assert options.prefetch_priority is orc_confidence  # original kept


class TestPrepare:
    def test_input_module_not_mutated(self):
        module = compile_source(SOURCE)
        count = module.functions["main"].instruction_count()
        prepare(module, INPUTS)
        assert module.functions["main"].instruction_count() == count

    def test_profile_collected(self):
        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        profile = prepared.profile.function("main")
        assert profile.block_counts
        assert profile.branch_accuracy

    def test_inlining_happened(self):
        from repro.ir.instr import Opcode

        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        main = prepared.module.functions["main"]
        assert not any(i.op is Opcode.CALL for i in main.instructions())

    def test_inline_disabled(self):
        from repro.ir.instr import Opcode

        module = compile_source(SOURCE)
        options = CompilerOptions(inline=False)
        prepared = prepare(module, INPUTS, options)
        main = prepared.module.functions["main"]
        assert any(i.op is Opcode.CALL for i in main.instructions())


class TestBackend:
    def test_prepared_module_unchanged_by_backend(self):
        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        snapshot = prepared.module.functions["main"].instruction_count()
        compile_backend(prepared)
        compile_backend(
            prepared,
            prepared.options.with_priorities(
                hyperblock_priority=lambda env: 1.0),
        )
        assert prepared.module.functions["main"].instruction_count() \
            == snapshot

    def test_reports_populated(self):
        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        _scheduled, report = compile_backend(prepared)
        assert "main" in report.hyperblock
        assert "main" in report.regalloc

    def test_equivalence_across_priorities(self):
        ref = reference()
        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        priorities = [
            impact_priority,
            lambda env: 1.0,
            lambda env: -1.0,
            lambda env: env["exec_ratio"],
        ]
        for priority in priorities:
            scheduled, _report = compile_backend(
                prepared,
                prepared.options.with_priorities(
                    hyperblock_priority=priority),
            )
            result = simulate(scheduled, DEFAULT_EPIC)
            assert result.output_signature() == ref.output_signature()

    def test_novel_dataset_on_train_profile(self):
        """The paper's methodology: profile on train data, evaluate the
        same binary on novel data."""
        novel = {"data": [(i * 11) % 17 for i in range(256)], "n": [220]}
        module = compile_source(SOURCE)
        prepared = prepare(module, INPUTS)
        scheduled, _report = compile_backend(prepared)
        ref = reference(inputs=novel)
        result = simulate(scheduled, DEFAULT_EPIC, inputs=novel)
        assert result.output_signature() == ref.output_signature()

    def test_hyperblock_disabled(self):
        module = compile_source(SOURCE)
        options = CompilerOptions(hyperblock=False)
        prepared = prepare(module, INPUTS, options)
        _scheduled, report = compile_backend(prepared)
        assert report.hyperblock == {}

    def test_prefetch_enabled_on_itanium(self):
        source = """
        float stream[2048];
        void main() {
          float acc = 0.0;
          int i;
          for (i = 0; i < 2048; i = i + 1) { acc = acc + stream[i]; }
          out(acc);
        }
        """
        inputs = {"stream": [0.5] * 2048}
        module = compile_source(source)
        options = CompilerOptions(machine=ITANIUM_MACHINE, prefetch=True)
        prepared = prepare(module, inputs, options)
        scheduled, report = compile_backend(prepared)
        assert sum(r.inserted for r in report.prefetch.values()) > 0
        result = simulate(scheduled, ITANIUM_MACHINE, inputs=inputs)
        assert result.prefetch_count > 0


class TestOneShot:
    def test_compile_module(self):
        module = compile_source(SOURCE)
        scheduled, report = compile_module(module, INPUTS)
        ref = reference()
        result = simulate(scheduled, DEFAULT_EPIC)
        assert result.output_signature() == ref.output_signature()
