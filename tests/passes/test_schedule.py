"""List-scheduler tests: dependence DAG construction, resource limits,
latency honouring, and priority behaviour."""

from collections import defaultdict

from repro.frontend import compile_source
from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import (
    FUClass,
    Opcode,
    binop,
    jmp,
    load,
    mov,
    out,
    ret,
    store,
)
from repro.ir.values import INT, PRED, Imm, VReg
from repro.machine.descr import DEFAULT_EPIC
from repro.passes.schedule import (
    build_dag,
    latency_weighted_depth,
    schedule_block,
    schedule_module,
)


def vr(uid, vtype=INT, name=""):
    return VReg(uid, vtype, name)


def edges_of(dag):
    pairs = set()
    for index, succs in enumerate(dag.succs):
        for succ, latency in succs:
            pairs.add((index, succ, latency))
    return pairs


class TestDAG:
    def test_raw_edge_carries_producer_latency(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            binop(Opcode.MUL, a, b, c),   # latency 3
            binop(Opcode.ADD, c, a, b),   # consumes a
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        assert (0, 1, 3) in edges_of(dag)

    def test_war_edge_zero_latency(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            binop(Opcode.ADD, c, a, b),   # reads a
            mov(a, Imm(1)),               # writes a (WAR)
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        assert (0, 1, 0) in edges_of(dag)

    def test_waw_ordering(self):
        a = vr(0)
        block = Block("b", [mov(a, Imm(1)), mov(a, Imm(2)), ret()])
        dag = build_dag(block, DEFAULT_EPIC)
        assert any(src == 0 and dst == 1 for src, dst, _ in edges_of(dag))

    def test_store_load_ordering(self):
        addr, value, dest = vr(0), vr(1), vr(2)
        block = Block("b", [
            store(addr, value),
            load(dest, addr),
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        assert (0, 1, 1) in edges_of(dag)

    def test_loads_not_ordered_with_each_other(self):
        addr, d1, d2 = vr(0), vr(1), vr(2)
        block = Block("b", [
            load(d1, addr),
            load(d2, addr),
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        assert not any(src == 0 and dst == 1 for src, dst, _ in edges_of(dag))

    def test_out_ordering_preserved(self):
        a, b = vr(0), vr(1)
        block = Block("b", [out(a), out(b), ret()])
        dag = build_dag(block, DEFAULT_EPIC)
        assert any(src == 0 and dst == 1 for src, dst, _ in edges_of(dag))

    def test_everything_precedes_terminator(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            binop(Opcode.ADD, a, b, c),
            mov(b, Imm(3)),
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        terminator_preds = {src for src, dst, _ in edges_of(dag) if dst == 2}
        assert terminator_preds == {0, 1}

    def test_guarded_def_reads_its_destination(self):
        x = vr(0)
        guard = vr(9, PRED)
        block = Block("b", [
            mov(x, Imm(1)),
            mov(x, Imm(2), guard=guard),  # reads old x implicitly
            out(x),
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        # instr0 -> instr1 must be ordered (RAW through the guard
        # semantics), and instr1 -> instr2.
        assert any(s == 0 and d == 1 for s, d, _ in edges_of(dag))
        assert any(s == 1 and d == 2 for s, d, _ in edges_of(dag))

    def test_critical_path(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            binop(Opcode.MUL, a, b, c),   # 3 cycles
            binop(Opcode.ADD, c, a, a),   # depends on mul
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        depths = dag.critical_path()
        assert depths[0] >= 4  # 3 (mul) + 1 (add)
        assert dag.height == max(depths)


class TestScheduling:
    def test_respects_fu_limits(self):
        # 10 independent loads on a 2-memory-unit machine.
        instrs = [load(vr(i + 1), vr(0)) for i in range(10)]
        block = Block("b", instrs + [ret()])
        scheduled = schedule_block(block, DEFAULT_EPIC)
        for bundle in scheduled.bundles:
            by_class = defaultdict(int)
            for instr in bundle:
                by_class[instr.fu_class] += 1
            assert by_class[FUClass.MEM] <= DEFAULT_EPIC.mem_units
            assert len(bundle) <= DEFAULT_EPIC.issue_width

    def test_respects_issue_width(self):
        instrs = [mov(vr(i + 1), Imm(i)) for i in range(20)]
        block = Block("b", instrs + [ret()])
        scheduled = schedule_block(block, DEFAULT_EPIC)
        assert all(len(b) <= DEFAULT_EPIC.issue_width
                   for b in scheduled.bundles)

    def test_latency_separation(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            mov(b, Imm(2)),
            mov(c, Imm(3)),
            binop(Opcode.MUL, a, b, c),
            binop(Opcode.ADD, b, a, c),   # must wait 3 cycles after mul
            ret(),
        ])
        scheduled = schedule_block(block, DEFAULT_EPIC)
        cycle_of = {}
        for cycle, bundle in enumerate(scheduled.bundles):
            for instr in bundle:
                cycle_of[instr.uid] = cycle
        mul = block.instrs[2]
        add = block.instrs[3]
        assert cycle_of[add.uid] >= cycle_of[mul.uid] + 3

    def test_terminator_in_last_bundle(self):
        module = compile_source("""
        void main() {
          int i;
          for (i = 0; i < 3; i = i + 1) { out(i); }
        }
        """)
        scheduled = schedule_module(module, DEFAULT_EPIC)
        for func in scheduled.functions.values():
            for label in func.block_order:
                block = func.blocks[label]
                flat = block.flat_instructions()
                assert flat[-1].is_terminator

    def test_all_instructions_scheduled_once(self):
        module = compile_source("""
        int a[16];
        void main() {
          int i;
          for (i = 0; i < 16; i = i + 1) { a[i] = i * 3; }
          out(a[7]);
        }
        """)
        scheduled = schedule_module(module, DEFAULT_EPIC)
        func = module.functions["main"]
        for label in func.block_order:
            want = {instr.uid for instr in func.blocks[label].instrs}
            got = [instr.uid for instr
                   in scheduled.functions["main"].blocks[label]
                   .flat_instructions()]
            assert set(got) == want
            assert len(got) == len(want)

    def test_ilp_is_exploited(self):
        # 8 independent adds: a serial machine needs 8 cycles; 4 int
        # units need 2 (plus the terminator cycle).
        instrs = [binop(Opcode.ADD, vr(i + 10), vr(0), vr(1))
                  for i in range(8)]
        block = Block("b", instrs + [ret()])
        scheduled = schedule_block(block, DEFAULT_EPIC)
        assert scheduled.cycles <= 3

    def test_custom_priority_changes_order(self):
        # Reverse priority prefers later instructions first.
        instrs = [mov(vr(i + 1), Imm(i)) for i in range(8)]
        block = Block("b", instrs + [ret()])
        default = schedule_block(block, DEFAULT_EPIC)
        reverse = schedule_block(
            block, DEFAULT_EPIC, priority=lambda i, dag: float(i)
        )
        first_default = default.bundles[0].instrs[0].uid
        first_reverse = reverse.bundles[0].instrs[0].uid
        assert first_default != first_reverse

    def test_latency_weighted_depth_hook(self):
        a, b, c = vr(0), vr(1), vr(2)
        block = Block("b", [
            binop(Opcode.MUL, a, b, c),
            binop(Opcode.ADD, c, a, a),
            ret(),
        ])
        dag = build_dag(block, DEFAULT_EPIC)
        assert latency_weighted_depth(0, dag) > latency_weighted_depth(1, dag)

    def test_empty_block(self):
        scheduled = schedule_block(Block("empty"), DEFAULT_EPIC)
        assert scheduled.cycles == 0
