"""Scalar cleanup passes: folding, propagation, DCE, peephole,
increment folding — all behaviour-preserving."""

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.ir.instr import Opcode
from repro.passes.cleanup import (
    cleanup_function,
    cleanup_module,
    constant_fold_function,
    copy_propagate_function,
    dce_function,
    fold_increments_function,
    peephole_function,
)


def run_module(module, inputs=None):
    interp = Interpreter(module)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run()


def ops_of(function):
    return [instr.op for instr in function.instructions()]


class TestConstantFolding:
    def test_folds_constant_arithmetic(self):
        module = compile_source("void main() { out(2 + 3 * 4); }")
        func = module.functions["main"]
        folded = constant_fold_function(func)
        # After propagation of literals at lowering, the adds/muls on
        # immediates fold away.
        cleanup_function(func)
        assert Opcode.MUL not in ops_of(func)
        assert run_module(module).outputs == [14]

    def test_division_by_zero_left_for_runtime(self):
        module = compile_source("void main() { int z = 0; out(1 / z); }")
        func = module.functions["main"]
        cleanup_function(func)
        # The division must survive folding (it faults at runtime).
        assert Opcode.DIV in ops_of(func)

    def test_float_folds(self):
        module = compile_source("void main() { out(2.0 * 3.5 + 1.0); }")
        cleanup_module(module)
        assert run_module(module).outputs == [8.0]


class TestCopyPropagation:
    def test_copies_forwarded(self):
        source = """
        void main() {
          int a = 5;
          int b = a;
          int c = b;
          out(c);
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        copy_propagate_function(func)
        dce_function(func)
        # After propagation + DCE only one mov should be feeding out.
        movs = [op for op in ops_of(func) if op is Opcode.MOV]
        assert len(movs) <= 2
        assert run_module(module).outputs == [5]

    def test_redefinition_kills_copy(self):
        source = """
        void main() {
          int a = 1;
          int b = a;
          a = 9;
          out(b);
        }
        """
        module = compile_source(source)
        cleanup_module(module)
        assert run_module(module).outputs == [1]


class TestDCE:
    def test_removes_dead_code(self):
        source = """
        void main() {
          int dead = 1 + 2;
          int alive = 7;
          out(alive);
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        before = func.instruction_count()
        cleanup_function(func)
        assert func.instruction_count() < before
        assert run_module(module).outputs == [7]

    def test_keeps_stores_and_calls(self):
        source = """
        int g[4];
        int bump(int x) { g[0] = g[0] + x; return 0; }
        void main() {
          bump(3);
          g[1] = 5;
          out(g[0] + g[1]);
        }
        """
        module = compile_source(source)
        cleanup_module(module)
        assert run_module(module).outputs == [8]

    def test_dead_loads_removed(self):
        source = """
        int g[4];
        void main() {
          int unused = g[2];
          out(1);
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        cleanup_function(func)
        assert Opcode.LOAD not in ops_of(func)


class TestPeephole:
    def test_add_zero_removed(self):
        source = """
        int x;
        void main() { out(x + 0); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        cleanup_function(func)
        assert Opcode.ADD not in ops_of(func)

    def test_mul_one_removed(self):
        source = """
        int x;
        void main() { out(x * 1); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        cleanup_function(func)
        assert Opcode.MUL not in ops_of(func)

    def test_branch_on_constant_becomes_jump(self):
        source = """
        void main() {
          if (1) { out(10); } else { out(20); }
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        cleanup_function(func)
        assert Opcode.BR not in ops_of(func)
        assert run_module(module).outputs == [10]

    def test_unreachable_arm_removed(self):
        source = """
        void main() {
          if (0) { out(10); } else { out(20); }
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        before_blocks = len(func.block_order)
        cleanup_function(func)
        assert len(func.block_order) < before_blocks
        assert run_module(module).outputs == [20]


class TestIncrementFolding:
    def test_loop_increment_canonicalized(self):
        source = """
        void main() {
          int i;
          int acc = 0;
          for (i = 0; i < 5; i = i + 1) { acc = acc + i; }
          out(acc);
        }
        """
        module = compile_source(source)
        func = module.functions["main"]
        cleanup_function(func)
        # Find a self-increment "i = add i, 1".
        self_incs = [
            instr for instr in func.instructions()
            if instr.op is Opcode.ADD and instr.srcs
            and instr.srcs[0] == instr.dest
        ]
        assert self_incs
        assert run_module(module).outputs == [10]

    def test_fold_blocked_by_interleaving_use(self):
        # t = a + 1 ; out(a) ; a = t  -- cannot fold (a is read between).
        from repro.ir.block import Block
        from repro.ir.function import Function
        from repro.ir.instr import binop, mov, out, ret
        from repro.ir.values import Imm, INT

        func = Function("f", [])
        a = func.new_vreg(INT, "a")
        t = func.new_vreg(INT, "t")
        entry = func.new_block("entry")
        entry.append(mov(a, Imm(5)))
        entry.append(binop(Opcode.ADD, t, a, Imm(1)))
        entry.append(out(a))
        entry.append(mov(a, t))
        entry.append(out(a))
        entry.append(ret())
        folded = fold_increments_function(func)
        assert folded == 0


class TestWholePrograms:
    def test_cleanup_preserves_complex_program(self):
        source = """
        int data[32];
        int n;
        int f(int x) { return x * 2 + 1; }
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < n; i = i + 1) {
            if (data[i] % 3 == 0) { acc = acc + f(data[i]); }
          }
          out(acc);
        }
        """
        inputs = {"data": [(i * 7) % 11 for i in range(32)], "n": [30]}
        module = compile_source(source)
        before = run_module(module, inputs)
        cleanup_module(module)
        after = run_module(module, inputs)
        assert before.output_signature() == after.output_signature()
        assert after.steps <= before.steps
