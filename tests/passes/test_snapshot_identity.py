"""Compilation-forking identity matrix (docs/FORKING.md).

The contract under test: a suffix replay from a
:class:`~repro.passes.snapshot.PipelineSnapshot` is **bit-identical**
to the full ``compile_backend`` — same scheduled module (content
digest), same :class:`BackendReport`, same simulated cycles, same
fitness-cache keys — for every case study, and the warm path
re-executes zero prefix stages (checked through obs counters).

``REPRO_SNAPSHOT_FULL_MATRIX=1`` widens the benchmark subset (used by
the local full-suite sweep; CI runs the representative subset).
"""

from __future__ import annotations

import dataclasses
import os
import random

import pytest

from repro import obs
from repro.gp.generate import TreeGenerator
from repro.machine.sim import Simulator
from repro.metaopt.fitness_cache import FitnessCache
from repro.metaopt.harness import EvaluationHarness, _as_hook, case_study
from repro.metaopt.settings import EvalSettings
from repro.passes.pipeline import STAGE_BY_HOOK, compile_backend
from repro.passes.snapshot import (
    SnapshotCache,
    build_snapshot,
    fingerprint_is_persistable,
    options_fingerprint,
)
from repro.suite.registry import get as get_benchmark

CASES = ("hyperblock", "regalloc", "prefetch", "scheduling")

BENCHMARKS = ("codrle4", "huff_enc")
if os.environ.get("REPRO_SNAPSHOT_FULL_MATRIX"):
    from repro.suite import all_benchmarks

    BENCHMARKS = tuple(all_benchmarks())


def _report_data(report) -> tuple:
    """BackendReport as comparable plain data."""
    return tuple(
        sorted((name, dataclasses.asdict(entry))
               for name, entry in getattr(report, section).items())
        for section in ("hyperblock", "prefetch", "regalloc")
    )


def _simulate(scheduled, case, benchmark: str) -> tuple:
    bench = get_benchmark(benchmark)
    simulator = Simulator(scheduled, case.machine)
    for name, values in bench.inputs("train").items():
        simulator.set_global(name, values)
    result = simulator.run()
    return result.cycles, result.outputs, result.return_value


@pytest.mark.parametrize("case_name", CASES)
@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_replay_matches_full_backend(case_name: str, bench_name: str):
    case = case_study(case_name)
    harness = EvaluationHarness(case, EvalSettings(use_snapshots=False))
    prep = harness.prepared(bench_name)
    options = case.options_for(_as_hook(case.baseline_tree()))
    stage = STAGE_BY_HOOK[case.hook]

    full_sched, full_report = compile_backend(prep, options)
    snapshot = SnapshotCache().get_or_build(bench_name, prep, options, stage)
    replay_sched, replay_report = compile_backend(prep, options,
                                                  snapshot=snapshot)

    assert replay_sched.content_digest() == full_sched.content_digest()
    assert _report_data(replay_report) == _report_data(full_report)
    # A snapshot must be restorable any number of times.
    again_sched, _ = compile_backend(prep, options, snapshot=snapshot)
    assert again_sched.content_digest() == full_sched.content_digest()


@pytest.mark.parametrize("case_name", CASES)
def test_replay_cycles_match(case_name: str):
    case = case_study(case_name)
    harness = EvaluationHarness(case, EvalSettings(use_snapshots=False))
    prep = harness.prepared("codrle4")
    options = case.options_for(_as_hook(case.baseline_tree()))
    stage = STAGE_BY_HOOK[case.hook]

    full_sched, _ = compile_backend(prep, options)
    snapshot = build_snapshot(prep, options, stage)
    replay_sched, _ = compile_backend(prep, options, snapshot=snapshot)
    assert _simulate(replay_sched, case, "codrle4") == \
        _simulate(full_sched, case, "codrle4")


def test_both_restore_strategies_are_identical():
    case = case_study("regalloc")
    harness = EvaluationHarness(case, EvalSettings(use_snapshots=False))
    prep = harness.prepared("codrle4")
    options = case.options_for(_as_hook(case.baseline_tree()))
    full_sched, _ = compile_backend(prep, options)
    snapshot = build_snapshot(prep, options, "regalloc")
    for strategy in ("pickle", "clone"):
        snapshot.strategy = strategy
        sched, _ = compile_backend(prep, options, snapshot=snapshot)
        assert sched.content_digest() == full_sched.content_digest(), strategy


def test_verify_ir_checkpoints_fire_on_both_paths():
    case = case_study("regalloc")
    options = dataclasses.replace(
        case.options_for(_as_hook(case.baseline_tree())), verify_ir=True)
    harness = EvaluationHarness(case, EvalSettings(use_snapshots=False))
    prep = harness.prepared("codrle4")
    full_sched, _ = compile_backend(prep, options)
    snapshot = build_snapshot(prep, options, "regalloc")
    replay_sched, _ = compile_backend(prep, options, snapshot=snapshot)
    assert replay_sched.content_digest() == full_sched.content_digest()


@pytest.mark.parametrize("case_name", ("regalloc", "scheduling"))
def test_harness_fitness_and_cache_keys_identical(case_name, tmp_path):
    """Snapshots on vs off: same speedups, same persisted cache keys."""
    case = case_study(case_name)
    generator = TreeGenerator(case.pset, random.Random(11))
    trees = [case.baseline_tree()] + generator.ramped_half_and_half(6)
    warm_dir, cold_dir = tmp_path / "snap", tmp_path / "full"
    forked = EvaluationHarness(case, EvalSettings(use_snapshots=True),
                               fitness_cache=FitnessCache(warm_dir))
    full = EvaluationHarness(case, EvalSettings(use_snapshots=False),
                             fitness_cache=FitnessCache(cold_dir))
    for tree in trees:
        assert forked.speedup(tree, "codrle4") == \
            full.speedup(tree, "codrle4")
    keys = sorted(p.name for p in warm_dir.rglob("*.json"))
    assert keys == sorted(p.name for p in cold_dir.rglob("*.json"))
    assert keys, "expected persisted fitness entries"


def test_warm_path_runs_zero_prefix_stages():
    """After the snapshot is built (cold), further candidates replay
    only the suffix: the prefix pass counters must not move."""
    case = case_study("regalloc")  # prefix: hyperblock
    generator = TreeGenerator(case.pset, random.Random(5))
    trees = [case.baseline_tree()] + generator.ramped_half_and_half(4)
    registry = obs.enable_metrics()
    try:
        before = registry.snapshot()["counters"]
        harness = EvaluationHarness(case)
        for tree in trees:
            harness.simulate(tree, "codrle4")
        after = registry.snapshot()["counters"]
    finally:
        obs.disable_metrics()

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    compiles = harness.compile_count
    assert compiles == len(trees)
    # One prefix execution total (the snapshot build) — zero on the
    # warm path — while the suffix ran once per candidate.
    assert delta("pipeline.pass_runs.hyperblock") == 1
    assert delta("pipeline.pass_runs.regalloc") == compiles
    assert delta("pipeline.pass_runs.schedule") == compiles
    assert delta("pipeline.snapshot.builds") == 1
    assert delta("pipeline.snapshot.misses") == 1
    assert delta("pipeline.snapshot.hits") == compiles - 1
    assert delta("pipeline.snapshot.restores") == compiles
    assert harness.stats()["snapshot_hits"] == compiles - 1


def test_lru_eviction_and_disk_reload(tmp_path):
    case = case_study("regalloc")
    harness = EvaluationHarness(case, EvalSettings(use_snapshots=False))
    options = case.options_for(_as_hook(case.baseline_tree()))
    cache = SnapshotCache(capacity=1, disk_dir=tmp_path)
    prepared = {name: harness.prepared(name)
                for name in ("codrle4", "huff_enc")}
    cache.get_or_build("codrle4", prepared["codrle4"], options, "regalloc")
    cache.get_or_build("huff_enc", prepared["huff_enc"], options, "regalloc")
    assert cache.evictions == 1
    # Evicted entry comes back from disk, not a rebuild.
    cache.get_or_build("codrle4", prepared["codrle4"], options, "regalloc")
    assert cache.disk_hits == 1
    assert cache.builds == 2
    # A fresh cache (new process, same directory) also reloads.
    fresh = SnapshotCache(disk_dir=tmp_path)
    fresh.get_or_build("huff_enc", prepared["huff_enc"], options, "regalloc")
    assert fresh.disk_hits == 1 and fresh.builds == 0


def test_options_fingerprint_scoping():
    """Prefix priorities key the snapshot; the hook's own priority and
    downstream ones must not (the population shares one snapshot)."""
    case = case_study("regalloc")
    generator = TreeGenerator(case.pset, random.Random(2))
    tree_a, tree_b = generator.ramped_half_and_half(2)[:2]
    options_a = case.options_for(_as_hook(tree_a))
    options_b = case.options_for(_as_hook(tree_b))
    assert options_fingerprint(options_a, "regalloc") == \
        options_fingerprint(options_b, "regalloc")
    # ... but a different *prefix* (hyperblock) priority re-keys it.
    hb_case = case_study("hyperblock")
    hb_gen = TreeGenerator(hb_case.pset, random.Random(2))
    changed = dataclasses.replace(
        options_a, hyperblock_priority=_as_hook(hb_gen.grow(3)))
    assert options_fingerprint(changed, "regalloc") != \
        options_fingerprint(options_a, "regalloc")
    # Arbitrary natives are process-local: cacheable, never persisted.
    native = dataclasses.replace(
        options_a, hyperblock_priority=lambda env: 0.0)
    fingerprint = options_fingerprint(native, "regalloc")
    assert not fingerprint_is_persistable(fingerprint)
    assert fingerprint_is_persistable(
        options_fingerprint(options_a, "regalloc"))
