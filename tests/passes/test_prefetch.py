"""Data prefetching: stream detection, feature extraction, decision
hooks, insertion mechanics, and the ORC baseline."""

import pytest

from repro.frontend import compile_source
from repro.ir.instr import Opcode
from repro.ir.interp import Interpreter
from repro.machine.descr import ITANIUM_MACHINE
from repro.machine.sim import Simulator
from repro.passes.cleanup import cleanup_module
from repro.passes.prefetch import (
    PREFETCH_BOOL_FEATURES,
    PREFETCH_REAL_FEATURES,
    always_prefetch,
    insert_prefetches,
    never_prefetch,
    orc_confidence,
)
from repro.passes.regalloc import allocate_module
from repro.passes.schedule import schedule_module
from repro.profile.profiler import collect_profile

STREAM_SOURCE = """
float src[2048];
float dst[2048];
void main() {
  float acc = 0.0;
  int i;
  for (i = 0; i < 2048; i = i + 1) {
    dst[i] = src[i] * 2.0;
    acc = acc + dst[i];
  }
  out(acc);
}
"""

STREAM_INPUTS = {"src": [0.25 * i for i in range(2048)]}


def prepared_function(source, inputs, priority=orc_confidence):
    module = compile_source(source)
    cleanup_module(module)
    profile = collect_profile(module, inputs)
    func = module.functions["main"]
    report = insert_prefetches(func, ITANIUM_MACHINE,
                               profile.function("main"), priority)
    return module, func, report


def simulate(module, inputs):
    working = module.clone()
    allocate_module(working, ITANIUM_MACHINE)
    scheduled = schedule_module(working, ITANIUM_MACHINE)
    simulator = Simulator(scheduled, ITANIUM_MACHINE)
    for name, values in inputs.items():
        simulator.set_global(name, values)
    return simulator.run()


def reference(source, inputs):
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.set_global(name, values)
    return interp.run()


class TestStreamDetection:
    def test_unit_stride_loads_found(self):
        _module, _func, report = prepared_function(STREAM_SOURCE,
                                                   STREAM_INPUTS)
        assert report.candidates >= 2  # src[i] and dst[i] reload

    def test_no_candidates_without_loops(self):
        source = "float x; void main() { out(x * 2.0); }"
        _module, _func, report = prepared_function(source, {})
        assert report.candidates == 0

    def test_indirect_stream_not_affine(self):
        source = """
        int idx[256];
        float data[256];
        void main() {
          float acc = 0.0;
          int i;
          for (i = 0; i < 256; i = i + 1) {
            acc = acc + data[idx[i]];
          }
          out(acc);
        }
        """
        inputs = {"idx": list(range(256)), "data": [1.0] * 256}
        _module, _func, report = prepared_function(source, inputs)
        decisions = dict(report.decisions)
        # idx[i] itself is affine; data[idx[i]] is not.  At least one
        # candidate exists (idx) but not every load qualifies.
        loads = 2  # idx[i] and data[idx[i]]
        assert report.candidates < loads * 1 + 1

    def test_strided_access(self):
        source = STREAM_SOURCE.replace("i = i + 1", "i = i + 8")
        _module, _func, report = prepared_function(source, STREAM_INPUTS)
        assert report.candidates >= 1


class TestFeatures:
    def _first_env(self, source, inputs):
        captured = []

        def recorder(env):
            captured.append(dict(env))
            return False

        prepared_function(source, inputs, priority=recorder)
        return captured

    def test_declared_features_present(self):
        envs = self._first_env(STREAM_SOURCE, STREAM_INPUTS)
        assert envs
        for env in envs:
            for name in PREFETCH_REAL_FEATURES:
                assert name in env
            for name in PREFETCH_BOOL_FEATURES:
                assert name in env

    def test_static_trip_known_for_constant_bounds(self):
        envs = self._first_env(STREAM_SOURCE, STREAM_INPUTS)
        assert any(env["trip_known"] for env in envs)
        # The loop was unroll-eligible upstream but here raw: trips 2048
        assert any(env["static_trip"] >= 1024 for env in envs)

    def test_estimated_trips_from_profile(self):
        source = """
        int n;
        float src[2048];
        void main() {
          float acc = 0.0;
          int i;
          for (i = 0; i < n; i = i + 1) { acc = acc + src[i]; }
          out(acc);
        }
        """
        inputs = {"n": [600], "src": [1.0] * 2048}
        envs = self._first_env(source, inputs)
        assert any(not env["trip_known"] for env in envs)
        assert any(550 <= env["est_trip_count"] <= 650 for env in envs)

    def test_unit_stride_flag(self):
        envs = self._first_env(STREAM_SOURCE, STREAM_INPUTS)
        assert any(env["unit_stride"] for env in envs)


class TestInsertion:
    def test_prefetch_instructions_inserted(self):
        module, func, report = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=always_prefetch
        )
        assert report.inserted == report.candidates > 0
        prefetches = [i for i in func.instructions()
                      if i.op is Opcode.PREFETCH]
        assert len(prefetches) == report.inserted

    def test_never_prefetch_inserts_nothing(self):
        _module, func, report = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=never_prefetch
        )
        assert report.inserted == 0
        assert not any(i.op is Opcode.PREFETCH
                       for i in func.instructions())

    def test_semantics_unchanged(self):
        ref = reference(STREAM_SOURCE, STREAM_INPUTS)
        module, _func, _report = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=always_prefetch
        )
        result = simulate(module, STREAM_INPUTS)
        assert result.output_signature() == ref.output_signature()

    def test_prefetching_improves_streaming_loop(self):
        module_on, _f, _r = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=always_prefetch
        )
        module_off, _f2, _r2 = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=never_prefetch
        )
        on = simulate(module_on, STREAM_INPUTS)
        off = simulate(module_off, STREAM_INPUTS)
        assert on.prefetch_count > 0
        assert on.cycles < off.cycles
        assert on.memory_stall_cycles < off.memory_stall_cycles

    def test_priority_exceptions_mean_no_prefetch(self):
        def broken(env):
            raise ArithmeticError("boom")

        _module, _func, report = prepared_function(
            STREAM_SOURCE, STREAM_INPUTS, priority=broken
        )
        assert report.inserted == 0


class TestORCBaseline:
    def test_long_known_trips_prefetched(self):
        assert orc_confidence({
            "trip_known": True, "static_trip": 100.0,
            "est_trip_count": 0.0,
        })

    def test_short_known_trips_not_prefetched(self):
        assert not orc_confidence({
            "trip_known": True, "static_trip": 4.0,
            "est_trip_count": 4.0,
        })

    def test_profiled_trips_used_when_unknown(self):
        assert orc_confidence({
            "trip_known": False, "static_trip": 0.0,
            "est_trip_count": 50.0,
        })
        assert not orc_confidence({
            "trip_known": False, "static_trip": 0.0,
            "est_trip_count": 2.0,
        })
