"""Register allocation: colouring validity, spilling correctness,
priority-function influence, and the Chow–Hennessy baseline."""

import dataclasses

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.ir.instr import Opcode
from repro.ir.values import FLOAT, INT, PRED, PReg, VReg
from repro.machine.descr import DEFAULT_EPIC, MachineDescription
from repro.machine.sim import Simulator
from repro.passes.regalloc import (
    REGALLOC_BOOL_FEATURES,
    REGALLOC_REAL_FEATURES,
    SPILL_RESERVE,
    AllocationError,
    allocate_function,
    allocate_module,
    chow_hennessy_savings,
)
from repro.passes.schedule import schedule_module

PRESSURE_SOURCE = """
int data[64];
int n;
void main() {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = a + data[i];
    b = b + a;
    c = c + b * 2;
    d = d + c - a;
    e = e + d * b;
    f = f + e - c;
    g = g + f * 2 + d;
    h = h + g - e;
  }
  out(a); out(b); out(c); out(d); out(e); out(f); out(g); out(h);
}
"""

PRESSURE_INPUTS = {"data": [(i * 3) % 7 for i in range(64)], "n": [50]}


def tiny_machine(registers=6):
    return MachineDescription(name=f"tiny{registers}",
                              gp_registers=registers,
                              fp_registers=registers)


def reference(source, inputs):
    module = compile_source(source)
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.set_global(name, values)
    return interp.run()


def allocate_and_simulate(source, inputs, machine, priority=None):
    module = compile_source(source)
    reports = allocate_module(
        module, machine,
        spill_priority=priority or chow_hennessy_savings,
    )
    scheduled = schedule_module(module, machine)
    simulator = Simulator(scheduled, machine)
    for name, values in inputs.items():
        simulator.set_global(name, values)
    return simulator.run(), reports, module


class TestColouringValidity:
    def test_all_registers_physical_after_allocation(self):
        module = compile_source(PRESSURE_SOURCE)
        allocate_module(module, DEFAULT_EPIC)
        for func in module.functions.values():
            for instr in func.instructions():
                for reg in list(instr.reads()) + list(instr.writes()):
                    assert isinstance(reg, PReg)

    def test_register_indices_within_file(self):
        machine = tiny_machine(8)
        module = compile_source(PRESSURE_SOURCE)
        allocate_module(module, machine)
        for func in module.functions.values():
            for instr in func.instructions():
                for reg in list(instr.reads()) + list(instr.writes()):
                    if reg.vtype is INT:
                        assert 0 <= reg.index < 8
                    elif reg.vtype is PRED:
                        assert 0 <= reg.index < machine.pred_registers

    def test_no_spills_on_big_machine(self):
        module = compile_source(PRESSURE_SOURCE)
        reports = allocate_module(module, DEFAULT_EPIC)
        assert all(not r.spilled for r in reports.values())

    def test_interference_respected(self):
        """Simultaneously live values never share a register: checked
        by re-running liveness on the allocated function."""
        from repro.ir.liveness import live_at_instruction

        machine = tiny_machine(8)
        module = compile_source(PRESSURE_SOURCE)
        allocate_module(module, machine)
        func = module.functions["main"]
        # After allocation registers are PRegs; liveness works on VRegs
        # only, so check a weaker but meaningful invariant instead:
        # within any instruction, two distinct sources that were
        # simultaneously live cannot alias unless they held the same
        # value — verified behaviourally by the equivalence test below.
        assert func.instruction_count() > 0


class TestSpilling:
    def test_spills_occur_on_small_machine(self):
        _result, reports, _module = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, tiny_machine(6)
        )
        assert reports["main"].spilled
        assert reports["main"].spill_loads > 0
        assert reports["main"].spill_stores > 0
        assert reports["main"].rounds >= 2

    def test_spilled_code_equivalent(self):
        ref = reference(PRESSURE_SOURCE, PRESSURE_INPUTS)
        result, reports, _module = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, tiny_machine(6)
        )
        assert reports["main"].spilled
        assert result.output_signature() == ref.output_signature()

    def test_spilling_costs_cycles(self):
        big, _r1, _m1 = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, DEFAULT_EPIC
        )
        small, _r2, _m2 = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, tiny_machine(6)
        )
        assert small.cycles > big.cycles

    def test_stack_slots_allocated(self):
        module = compile_source(PRESSURE_SOURCE)
        before = module.functions["main"].frame_words
        allocate_module(module, tiny_machine(6))
        assert module.functions["main"].frame_words > before

    def test_impossibly_small_machine_raises(self):
        module = compile_source(PRESSURE_SOURCE)
        with pytest.raises(AllocationError):
            allocate_module(module, tiny_machine(SPILL_RESERVE))

    def test_guarded_defs_spill_with_guard(self):
        """Predicated code allocates correctly: the spill store keeps
        the defining instruction's guard."""
        from repro.metaopt import case_study, EvaluationHarness

        case = case_study("hyperblock",
                          machine=tiny_machine(8))
        harness = EvaluationHarness(case)
        result = harness.simulate(lambda env: 1.0, "rawcaudio", "train")
        baseline = reference_bench("rawcaudio")
        assert result.output_signature() == baseline.output_signature()


def reference_bench(name):
    from repro.suite import get

    bench = get(name)
    module = compile_source(bench.source, name)
    interp = Interpreter(module)
    for key, values in bench.inputs("train").items():
        interp.set_global(key, values)
    return interp.run()


class TestPriorityInfluence:
    def test_priority_selects_spill_victims(self):
        machine = tiny_machine(6)
        baseline, _r, _m = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, machine
        )

        def inverted(env):
            return -chow_hennessy_savings(env)

        worst, _r, _m = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, machine, priority=inverted
        )
        # Spilling the hottest ranges first must not be faster.
        assert worst.cycles >= baseline.cycles

    def test_different_priorities_spill_different_ranges(self):
        machine = tiny_machine(6)
        _res1, reports1, _m = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, machine
        )

        def inverted(env):
            return -chow_hennessy_savings(env)

        _res2, reports2, _m = allocate_and_simulate(
            PRESSURE_SOURCE, PRESSURE_INPUTS, machine, priority=inverted
        )
        assert set(reports1["main"].spilled) != set(reports2["main"].spilled)

    def test_equivalence_under_any_priority(self):
        import random

        ref = reference(PRESSURE_SOURCE, PRESSURE_INPUTS)
        for seed in range(5):
            rng = random.Random(seed)
            result, _r, _m = allocate_and_simulate(
                PRESSURE_SOURCE, PRESSURE_INPUTS, tiny_machine(6),
                priority=lambda env: rng.uniform(-10, 10),
            )
            assert result.output_signature() == ref.output_signature()


class TestBaseline:
    def test_equation_two(self):
        env = {"w": 0.5, "uses": 4.0, "defs": 2.0,
               "ld_save": 2.0, "st_save": 1.0}
        # 0.5 * (2*4 + 1*2) = 5
        assert chow_hennessy_savings(env) == 5.0

    def test_feature_names_exported(self):
        assert "w" in REGALLOC_REAL_FEATURES
        assert "uses" in REGALLOC_REAL_FEATURES
        assert "defs" in REGALLOC_REAL_FEATURES
        assert "is_float" in REGALLOC_BOOL_FEATURES

    def test_priority_env_has_declared_features(self):
        seen_envs = []

        def recording(env):
            seen_envs.append(dict(env))
            return chow_hennessy_savings(env)

        module = compile_source(PRESSURE_SOURCE)
        allocate_module(module, tiny_machine(6), spill_priority=recording)
        assert seen_envs
        for env in seen_envs[:5]:
            for name in REGALLOC_REAL_FEATURES:
                assert name in env
            for name in REGALLOC_BOOL_FEATURES:
                assert name in env


class TestPredicates:
    def test_predicated_function_allocates(self):
        from repro.passes.hyperblock import form_hyperblocks
        from repro.profile.profiler import collect_profile

        source = """
        int data[64];
        int n;
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < n; i = i + 1) {
            if (data[i] > 5) { acc = acc + 2; } else { acc = acc - 1; }
          }
          out(acc);
        }
        """
        inputs = {"data": [(i * 5) % 11 for i in range(64)], "n": [50]}
        ref = reference(source, inputs)
        module = compile_source(source)
        profile = collect_profile(module, inputs)
        form_hyperblocks(module.functions["main"], DEFAULT_EPIC,
                         profile.function("main"), lambda env: 1.0)
        allocate_module(module, DEFAULT_EPIC)
        scheduled = schedule_module(module, DEFAULT_EPIC)
        simulator = Simulator(scheduled, DEFAULT_EPIC)
        for name, values in inputs.items():
            simulator.set_global(name, values)
        assert simulator.run().output_signature() == ref.output_signature()
