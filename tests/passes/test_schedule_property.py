"""Property-based scheduler tests: on random straight-line blocks,
every schedule honours dependences, latencies and resource limits, and
the bundle execution order is sequentially consistent."""

import random
from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.ir.block import Block
from repro.ir.instr import FUClass, Opcode, binop, load, mov, ret, store
from repro.ir.values import INT, Imm, VReg
from repro.machine.descr import DEFAULT_EPIC
from repro.passes.schedule import build_dag, schedule_block


def random_block(seed: int, length: int) -> Block:
    """A random but well-formed straight-line block over 8 registers
    plus memory ops through a base address register."""
    rng = random.Random(seed)
    regs = [VReg(i, INT) for i in range(8)]
    base = VReg(100, INT)
    instrs = [mov(base, Imm(2000))]
    for reg in regs:
        instrs.append(mov(reg, Imm(rng.randrange(50))))
    for _ in range(length):
        roll = rng.random()
        dest = rng.choice(regs)
        if roll < 0.5:
            op = rng.choice([Opcode.ADD, Opcode.SUB, Opcode.MUL])
            instrs.append(binop(op, dest, rng.choice(regs),
                                rng.choice(regs)))
        elif roll < 0.7:
            instrs.append(load(dest, base))
        elif roll < 0.85:
            instrs.append(store(base, rng.choice(regs)))
        else:
            instrs.append(mov(dest, Imm(rng.randrange(100))))
    instrs.append(ret(regs[0]))
    return Block("b", instrs)


block_specs = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=40),
)


def cycle_map(scheduled):
    mapping = {}
    order = {}
    position = 0
    for cycle, bundle in enumerate(scheduled.bundles):
        for instr in bundle:
            mapping[instr.uid] = cycle
            order[instr.uid] = position
            position += 1
    return mapping, order


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(block_specs)
    def test_dependences_and_latencies_honoured(self, spec):
        seed, length = spec
        block = random_block(seed, length)
        dag = build_dag(block, DEFAULT_EPIC)
        scheduled = schedule_block(block, DEFAULT_EPIC)
        cycles, order = cycle_map(scheduled)
        for src_index, succs in enumerate(dag.succs):
            src = dag.instrs[src_index]
            for dst_index, latency in succs:
                dst = dag.instrs[dst_index]
                assert cycles[dst.uid] >= cycles[src.uid] + latency, (
                    f"{src} -> {dst} violated (lat {latency})"
                )
                # Zero-latency edges sharing a cycle must preserve
                # textual order (sequential bundle execution).
                if cycles[dst.uid] == cycles[src.uid]:
                    assert order[dst.uid] > order[src.uid]

    @settings(max_examples=60, deadline=None)
    @given(block_specs)
    def test_resources_never_oversubscribed(self, spec):
        seed, length = spec
        block = random_block(seed, length)
        scheduled = schedule_block(block, DEFAULT_EPIC)
        for bundle in scheduled.bundles:
            by_class = defaultdict(int)
            for instr in bundle:
                by_class[instr.fu_class] += 1
            assert len(bundle) <= DEFAULT_EPIC.issue_width
            for fu_class, used in by_class.items():
                assert used <= DEFAULT_EPIC.units_for(fu_class)

    @settings(max_examples=60, deadline=None)
    @given(block_specs)
    def test_every_instruction_scheduled_exactly_once(self, spec):
        seed, length = spec
        block = random_block(seed, length)
        scheduled = schedule_block(block, DEFAULT_EPIC)
        scheduled_uids = [i.uid for b in scheduled.bundles for i in b]
        assert sorted(scheduled_uids) == sorted(i.uid for i in block.instrs)

    @settings(max_examples=40, deadline=None)
    @given(block_specs)
    def test_schedule_no_longer_than_serial(self, spec):
        seed, length = spec
        block = random_block(seed, length)
        scheduled = schedule_block(block, DEFAULT_EPIC)
        # An upper bound: serializing with max latency per instruction.
        worst = sum(DEFAULT_EPIC.latency(i) for i in block.instrs) + 1
        assert scheduled.cycles <= worst
