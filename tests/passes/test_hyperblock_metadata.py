"""Hyperblock feature bookkeeping across cascaded conversions: merged
blocks carry their absorbed branch counts and predictability products
into the features of enclosing regions (Table 4's num_branches /
predict_product for multi-branch paths)."""

import pytest

from repro.frontend import compile_source
from repro.machine.descr import DEFAULT_EPIC
from repro.passes.hyperblock import HyperblockFormation
from repro.profile.profiler import FunctionProfile, collect_profile

NESTED = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 3) {
      if (data[i] > 8) { acc = acc + 3; } else { acc = acc + 1; }
    } else {
      acc = acc - 1;
    }
  }
  out(acc);
}
"""

INPUTS = {"data": [(i * 7) % 11 for i in range(64)], "n": [60]}


def run_formation(source, inputs, **kwargs):
    module = compile_source(source)
    profile = collect_profile(module, inputs)
    func = module.functions["main"]
    formation = HyperblockFormation(
        func, DEFAULT_EPIC, profile.function("main"),
        priority=lambda env: 1.0, **kwargs
    )
    return formation.run(), formation


class TestCascadedFeatures:
    def test_nested_diamonds_both_convert(self):
        report, _formation = run_formation(NESTED, INPUTS)
        assert report.regions_converted == 2

    def test_outer_region_sees_merged_branches(self):
        report, _formation = run_formation(NESTED, INPUTS)
        # The inner diamond converts first; the outer decision's taken
        # path flows through the merged inner block, so its
        # num_branches counts both branches.
        outer = report.decisions[-1]
        branch_counts = {p.side: p.num_branches for p in outer.paths}
        assert branch_counts["taken"] >= 2.0
        assert branch_counts["fall"] == 1.0

    def test_predict_product_composes(self):
        report, _formation = run_formation(NESTED, INPUTS)
        outer = report.decisions[-1]
        # Predictability products are probabilities in (0, 1]; the
        # two-branch path's product is at most the single-branch
        # accuracy of the outer head (its own factor).
        for path in outer.paths:
            assert 0.0 < path.predict_product <= 1.0
        by_side = {p.side: p.predict_product for p in outer.paths}
        assert by_side["taken"] <= by_side["fall"] + 1e-9

    def test_empty_profile_defaults(self):
        module = compile_source(NESTED)
        func = module.functions["main"]
        formation = HyperblockFormation(
            func, DEFAULT_EPIC, FunctionProfile(),
            priority=lambda env: -1.0,
        )
        report = formation.run()
        # Unprofiled edges report the 0.5 default execution ratio.
        for decision in report.decisions:
            for path in decision.paths:
                assert path.exec_ratio == pytest.approx(0.5)
