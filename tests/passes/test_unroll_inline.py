"""Loop unrolling and inlining: eligibility rules and semantic
preservation."""

from repro.frontend import compile_source
from repro.ir.instr import Opcode
from repro.ir.interp import Interpreter
from repro.passes.cleanup import cleanup_module
from repro.passes.inline import inline_module
from repro.passes.unroll import unroll_module


def run_module(module, inputs=None):
    interp = Interpreter(module)
    for name, values in (inputs or {}).items():
        interp.set_global(name, values)
    return interp.run()


COUNTED_LOOP = """
float a[64];
void main() {
  float acc = 0.0;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    acc = acc + a[i] * 2.0;
  }
  out(acc);
  out(i);
}
"""


class TestUnroll:
    def _prepared(self, source):
        module = compile_source(source)
        cleanup_module(module)
        return module

    def test_counted_loop_unrolls(self):
        module = self._prepared(COUNTED_LOOP)
        report = unroll_module(module, factor=2)
        assert report.loops_unrolled == 1
        assert report.copies_added == 1

    def test_unrolled_semantics_preserved(self):
        inputs = {"a": [0.5 * i for i in range(64)]}
        module = self._prepared(COUNTED_LOOP)
        before = run_module(module, inputs)
        unroll_module(module, factor=4)
        after = run_module(module, inputs)
        assert before.output_signature() == after.output_signature()
        assert after.blocks_executed < before.blocks_executed

    def test_factor_must_divide_trips(self):
        source = COUNTED_LOOP.replace("i < 64", "i < 63")
        module = self._prepared(source)
        report = unroll_module(module, factor=2)
        assert report.loops_unrolled == 0

    def test_unknown_bound_not_unrolled(self):
        source = """
        int n;
        int a[64];
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < n; i = i + 1) { acc = acc + a[i]; }
          out(acc);
        }
        """
        module = self._prepared(source)
        report = unroll_module(module, factor=2)
        assert report.loops_unrolled == 0

    def test_branchy_body_not_unrolled(self):
        source = """
        int a[64];
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < 64; i = i + 1) {
            if (a[i] > 0) { acc = acc + 1; }
          }
          out(acc);
        }
        """
        module = self._prepared(source)
        report = unroll_module(module, factor=2)
        assert report.loops_unrolled == 0

    def test_non_unit_step(self):
        source = """
        int a[64];
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < 64; i = i + 2) { acc = acc + a[i]; }
          out(acc);
        }
        """
        inputs = {"a": list(range(64))}
        module = self._prepared(source)
        before = run_module(module, inputs)
        report = unroll_module(module, factor=2)
        assert report.loops_unrolled == 1
        after = run_module(module, inputs)
        assert before.output_signature() == after.output_signature()

    def test_outer_loop_untouched(self):
        source = """
        int m[16];
        void main() {
          int acc = 0;
          int i;
          int j;
          for (i = 0; i < 4; i = i + 1) {
            for (j = 0; j < 4; j = j + 1) {
              acc = acc + m[i * 4 + j];
            }
          }
          out(acc);
        }
        """
        inputs = {"m": list(range(16))}
        module = self._prepared(source)
        before = run_module(module, inputs)
        unroll_module(module, factor=2)
        after = run_module(module, inputs)
        assert before.output_signature() == after.output_signature()


class TestInline:
    def test_small_leaf_inlined(self):
        source = """
        int double_it(int x) { return x * 2; }
        void main() { out(double_it(21)); }
        """
        module = compile_source(source)
        report = inline_module(module)
        assert report.sites_inlined == 1
        main = module.functions["main"]
        assert not any(i.op is Opcode.CALL for i in main.instructions())
        assert run_module(module).outputs == [42]

    def test_semantics_preserved_in_loop(self):
        source = """
        int data[32];
        int weight(int v) { return v * 3 - 1; }
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < 32; i = i + 1) { acc = acc + weight(data[i]); }
          out(acc);
        }
        """
        inputs = {"data": [(i * 5) % 13 for i in range(32)]}
        module = compile_source(source)
        before = run_module(module, inputs)
        inline_module(module)
        after = run_module(module, inputs)
        assert before.output_signature() == after.output_signature()

    def test_recursion_not_inlined(self):
        source = """
        int fact(int n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        void main() { out(fact(6)); }
        """
        module = compile_source(source)
        report = inline_module(module)
        fact = module.functions["fact"]
        assert any(i.op is Opcode.CALL for i in fact.instructions())
        assert run_module(module).outputs == [720]

    def test_mutual_recursion_not_inlined(self):
        source = """
        int is_odd(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        void main() { out(is_even(10)); out(is_odd(7)); }
        """
        module = compile_source(source)
        inline_module(module)
        assert run_module(module).outputs == [1, 1]

    def test_large_callee_skipped(self):
        body = " ".join(f"x = x + {i};" for i in range(30))
        source = f"""
        int big(int x) {{ {body} return x; }}
        void main() {{ out(big(1)); }}
        """
        module = compile_source(source)
        report = inline_module(module, max_callee_ops=24)
        assert report.sites_inlined == 0

    def test_callee_with_frame_skipped(self):
        source = """
        int scratchy(int x) {
          int tmp[8];
          tmp[0] = x;
          return tmp[0] + 1;
        }
        void main() { out(scratchy(4)); }
        """
        module = compile_source(source)
        report = inline_module(module)
        assert report.sites_inlined == 0
        assert run_module(module).outputs == [5]

    def test_branchy_callee_inlined(self):
        source = """
        int clamp(int x, int lo, int hi) {
          if (x < lo) { return lo; }
          if (x > hi) { return hi; }
          return x;
        }
        void main() {
          out(clamp(5, 0, 10));
          out(clamp(-3, 0, 10));
          out(clamp(42, 0, 10));
        }
        """
        module = compile_source(source)
        report = inline_module(module)
        assert report.sites_inlined == 3
        assert run_module(module).outputs == [5, 0, 10]

    def test_helper_of_helper_flattens(self):
        source = """
        int inner(int x) { return x + 1; }
        int outer(int x) { return inner(x) * 2; }
        void main() { out(outer(10)); }
        """
        module = compile_source(source)
        inline_module(module)
        assert run_module(module).outputs == [22]
