"""Hyperblock formation: region matching, Table 4 features, the
IMPACT baseline, conversion legality, and decision mechanics."""

import random

import pytest

from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.ir.instr import Opcode
from repro.machine.descr import DEFAULT_EPIC
from repro.passes.hyperblock import (
    HYPERBLOCK_BOOL_FEATURES,
    HYPERBLOCK_REAL_FEATURES,
    HyperblockFormation,
    PathInfo,
    form_hyperblocks,
    impact_priority,
    region_feature_env,
)
from repro.profile.profiler import collect_profile

DIAMOND = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 5) { acc = acc + data[i] * 2; } else { acc = acc - 1; }
  }
  out(acc);
}
"""

TRIANGLE = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 5) { acc = acc + data[i]; }
    acc = acc + 1;
  }
  out(acc);
}
"""

NESTED = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 3) {
      if (data[i] > 8) { acc = acc + 3; } else { acc = acc + 1; }
    } else {
      acc = acc - 1;
    }
  }
  out(acc);
}
"""

LOOP_IN_ARM = """
int data[64];
int n;
void main() {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (data[i] > 5) {
      int j;
      for (j = 0; j < 3; j = j + 1) { acc = acc + j; }
    } else {
      acc = acc - 1;
    }
  }
  out(acc);
}
"""

INPUTS = {"data": [(i * 7) % 11 for i in range(64)], "n": [60]}


def formation(source, priority=impact_priority, inputs=INPUTS, **kwargs):
    module = compile_source(source)
    profile = collect_profile(module, inputs)
    func = module.functions["main"]
    form = HyperblockFormation(
        func, DEFAULT_EPIC, profile.function("main"), priority, **kwargs
    )
    report = form.run()
    return module, func, report


def run_module(module, inputs=INPUTS):
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.set_global(name, values)
    return interp.run()


class TestRegionMatching:
    def test_diamond_found(self):
        _module, _func, report = formation(DIAMOND,
                                           priority=lambda env: -1.0)
        assert report.regions_considered == 1
        decision = report.decisions[0]
        assert len(decision.paths) == 2
        assert {p.side for p in decision.paths} == {"taken", "fall"}

    def test_triangle_found(self):
        _module, _func, report = formation(TRIANGLE,
                                           priority=lambda env: -1.0)
        assert report.regions_considered == 1
        empty_arms = [p for p in report.decisions[0].paths if p.entry is None]
        assert len(empty_arms) == 1

    def test_loop_in_arm_not_convertible(self):
        _module, _func, report = formation(LOOP_IN_ARM,
                                           priority=lambda env: 1e9)
        assert report.regions_converted == 0

    def test_nested_converts_inner_then_outer(self):
        _module, _func, report = formation(NESTED, priority=lambda env: 1.0)
        assert report.regions_converted == 2

    def test_straightline_program_no_regions(self):
        source = "void main() { out(1 + 2); }"
        _module, _func, report = formation(source, inputs={})
        assert report.regions_considered == 0


class TestFeatures:
    def _paths(self, source, inputs=INPUTS):
        _module, _func, report = formation(source,
                                           priority=lambda env: -1.0,
                                           inputs=inputs)
        return report.decisions[0].paths

    def test_exec_ratios_sum_to_one_for_diamond(self):
        paths = self._paths(DIAMOND)
        total = sum(p.exec_ratio for p in paths)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_exec_ratio_reflects_profile(self):
        biased = {"data": [10] * 64, "n": [60]}  # always takes the if
        paths = self._paths(DIAMOND, inputs=biased)
        taken = next(p for p in paths if p.side == "taken")
        assert taken.exec_ratio > 0.95

    def test_num_ops_counts_head_plus_arm(self):
        paths = self._paths(DIAMOND)
        taken = next(p for p in paths if p.side == "taken")
        fall = next(p for p in paths if p.side == "fall")
        assert taken.num_ops > fall.num_ops  # then-arm is bigger

    def test_dep_height_positive(self):
        for path in self._paths(DIAMOND):
            assert path.dep_height >= 1.0

    def test_env_contains_all_declared_features(self):
        paths = self._paths(DIAMOND)
        env = region_feature_env(paths, 0)
        for name in HYPERBLOCK_REAL_FEATURES:
            assert name in env, name
            assert isinstance(env[name], float)
        for name in HYPERBLOCK_BOOL_FEATURES:
            assert name in env, name
            assert isinstance(env[name], bool)

    def test_aggregates_consistent(self):
        paths = self._paths(DIAMOND)
        env = region_feature_env(paths, 0)
        assert env["num_ops_max"] >= env["num_ops"] >= env["num_ops_min"]
        assert env["num_ops_min"] <= env["num_ops_mean"] <= env["num_ops_max"]
        assert env["num_paths"] == 2.0

    def test_call_marks_unsafe_jsr(self):
        source = """
        int data[64];
        int n;
        int helper(int x) { return x; }
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < n; i = i + 1) {
            if (data[i] > 5) { acc = acc + helper(i); } else { acc = acc - 1; }
          }
          out(acc);
        }
        """
        paths = self._paths(source)
        taken = next(p for p in paths if p.side == "taken")
        assert taken.has_unsafe_jsr

    def test_indirect_access_marks_mem_hazard(self):
        source = """
        int data[64];
        int idx[64];
        int n;
        void main() {
          int acc = 0;
          int i;
          for (i = 0; i < n; i = i + 1) {
            if (i % 2 == 0) { acc = acc + data[idx[i]]; } else { acc = acc - 1; }
          }
          out(acc);
        }
        """
        inputs = {"data": [1] * 64, "idx": list(range(64)), "n": [60]}
        paths = self._paths(source, inputs=inputs)
        taken = next(p for p in paths if p.side == "taken")
        assert taken.mem_hazard


class TestImpactBaseline:
    def _env(self, **overrides):
        env = {
            "dep_height": 4.0, "dep_height_max": 8.0,
            "num_ops": 5.0, "num_ops_max": 10.0,
            "exec_ratio": 0.5,
            "mem_hazard": False, "has_unsafe_jsr": False,
        }
        env.update(overrides)
        return env

    def test_equation_one_value(self):
        # 0.5 * 1.0 * (2.1 - 0.5 - 0.5) = 0.55
        assert impact_priority(self._env()) == pytest.approx(0.55)

    def test_hazard_penalty(self):
        clean = impact_priority(self._env())
        hazardous = impact_priority(self._env(mem_hazard=True))
        assert hazardous == pytest.approx(clean * 0.25)

    def test_unsafe_jsr_penalty(self):
        clean = impact_priority(self._env())
        jsr = impact_priority(self._env(has_unsafe_jsr=True))
        assert jsr == pytest.approx(clean * 0.25)

    def test_big_paths_penalized(self):
        small = impact_priority(self._env())
        big = impact_priority(self._env(dep_height=8.0, num_ops=10.0))
        assert big < small

    def test_hot_paths_favoured(self):
        cold = impact_priority(self._env(exec_ratio=0.1))
        hot = impact_priority(self._env(exec_ratio=0.9))
        assert hot > cold


class TestConversion:
    def test_semantics_preserved(self):
        module, _func, report = formation(DIAMOND, priority=lambda env: 1.0)
        assert report.regions_converted == 1
        plain = compile_source(DIAMOND)
        assert run_module(module).output_signature() \
            == run_module(plain).output_signature()

    def test_branch_removed_and_cmpp_added(self):
        module, func, report = formation(DIAMOND, priority=lambda env: 1.0)
        ops = [i.op for i in func.instructions()]
        assert Opcode.CMPP in ops
        # one branch left: the loop header's
        assert ops.count(Opcode.BR) == 1

    def test_guards_cover_both_arms(self):
        _module, func, _report = formation(DIAMOND, priority=lambda env: 1.0)
        guarded = [i for i in func.instructions() if i.guard is not None]
        assert len({i.guard for i in guarded}) == 2

    def test_nested_conversion_semantics(self):
        module, _func, report = formation(NESTED, priority=lambda env: 1.0)
        assert report.regions_converted == 2
        plain = compile_source(NESTED)
        assert run_module(module).output_signature() \
            == run_module(plain).output_signature()

    def test_triangle_conversion_semantics(self):
        module, _func, report = formation(TRIANGLE, priority=lambda env: 1.0)
        assert report.regions_converted == 1
        plain = compile_source(TRIANGLE)
        assert run_module(module).output_signature() \
            == run_module(plain).output_signature()

    def test_random_priorities_always_safe(self):
        """Any priority function yields a semantically equivalent
        program — the paper's 'the underlying algorithm ensures
        optimization legality'."""
        reference = run_module(compile_source(NESTED)).output_signature()
        for seed in range(8):
            rng = random.Random(seed)
            module, _func, _report = formation(
                NESTED, priority=lambda env: rng.uniform(-1, 2)
            )
            assert run_module(module).output_signature() == reference


class TestDecisionMechanics:
    def test_negative_priorities_block_conversion(self):
        _module, _func, report = formation(DIAMOND,
                                           priority=lambda env: -5.0)
        assert report.regions_converted == 0
        assert report.decisions[0].reason == "non-positive priority"

    def test_relative_threshold(self):
        def skewed(env):
            return 1.0 if env["num_ops"] > env["num_ops_mean"] else 0.01

        _module, _func, report = formation(DIAMOND, priority=skewed,
                                           rel_threshold=0.10)
        assert report.regions_converted == 0
        assert report.decisions[0].reason == "below relative threshold"

    def test_resource_budget_blocks_large_regions(self):
        _module, _func, report = formation(DIAMOND,
                                           priority=lambda env: 1.0,
                                           max_ops=1)
        assert report.regions_converted == 0
        assert report.decisions[0].reason == "resource budget exhausted"

    def test_report_counts(self):
        _module, _func, report = formation(NESTED, priority=lambda env: 1.0)
        assert report.regions_considered >= report.regions_converted
        assert report.ops_predicated > 0

    def test_priority_exceptions_treated_as_zero(self):
        def broken(env):
            raise ValueError("boom")

        _module, _func, report = formation(DIAMOND, priority=broken)
        assert report.regions_converted == 0
