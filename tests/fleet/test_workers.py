"""Fleet spec parsing and the per-worker HTTP client, exercised
against a real in-process :class:`ReproServer`."""

import pytest

from repro.fleet import (
    FleetError,
    FleetTarget,
    WorkerClient,
    WorkerRejected,
    parse_fleet_spec,
)
from repro.gp.parse import unparse
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.serve.server import ReproServer

BENCHMARK = "codrle4"


class TestParseFleetSpec:
    def test_local_with_count(self):
        assert parse_fleet_spec("local:3") == [FleetTarget("local")] * 3

    def test_bare_local_is_one_worker(self):
        assert parse_fleet_spec("local") == [FleetTarget("local")]

    def test_remote_hosts(self):
        assert parse_fleet_spec("box-a:8347,box-b:9000") == [
            FleetTarget("remote", "box-a:8347"),
            FleetTarget("remote", "box-b:9000"),
        ]

    def test_mixture_and_whitespace(self):
        assert parse_fleet_spec(" local:2 , box:8347 ") == [
            FleetTarget("local"),
            FleetTarget("local"),
            FleetTarget("remote", "box:8347"),
        ]

    @pytest.mark.parametrize("spec", [
        "", ",", "local:0", "local:none", "justahost", ":8347",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FleetError):
            parse_fleet_spec(spec)


@pytest.fixture(scope="module")
def server():
    srv = ReproServer(port=0, workers=1, capacity=4)
    srv.start()
    yield srv
    srv.drain(timeout=30.0)


@pytest.fixture()
def worker(server):
    client = WorkerClient(f"{server.host}:{server.port}", timeout=60.0)
    yield client
    client.close()


class TestWorkerClient:
    def test_health_and_capabilities(self, worker):
        assert worker.health()["status"] == "ok"
        caps = worker.capabilities()
        assert caps["schema"] == 1
        assert "POST /v1/evaluate-batch" in caps["endpoints"]

    def test_rejection_carries_status(self, worker):
        with pytest.raises(WorkerRejected) as excinfo:
            worker.request_json("GET", "/v1/no-such-route")
        assert excinfo.value.status == 404
        assert not excinfo.value.retryable

    def test_evaluate_shard_round_trip(self, worker):
        tree = BASELINE_TREES["hyperblock"]()
        expected = EvaluationHarness(case_study("hyperblock")).speedup(
            tree, BENCHMARK, "train")
        payload = {
            "schema": 1, "case": "hyperblock", "dataset": "train",
            "settings": {},
            "items": [{"index": 4, "tree": unparse(tree),
                       "benchmark": BENCHMARK}],
        }
        records = worker.evaluate_shard(payload)
        assert records == [{"index": 4, "ok": True, "value": expected}]

    def test_keep_alive_reuses_one_connection(self, worker):
        """Back-to-back shards must not leave the stream dirty — the
        second request rides the same socket."""
        tree = unparse(BASELINE_TREES["hyperblock"]())
        payload = {
            "schema": 1, "case": "hyperblock", "dataset": "train",
            "settings": {},
            "items": [{"index": 0, "tree": tree,
                       "benchmark": BENCHMARK}],
        }
        worker.evaluate_shard(payload)
        first_conn = worker._conn
        worker.evaluate_shard(payload)
        assert worker._conn is first_conn

    def test_fatal_in_band_record_raises_rejected(self, worker):
        payload = {
            "schema": 1, "case": "hyperblock", "dataset": "train",
            "settings": {},
            "fingerprint": {"pipeline": "bogus"},
            "items": [{"index": 0,
                       "tree": unparse(BASELINE_TREES["hyperblock"]()),
                       "benchmark": BENCHMARK}],
        }
        with pytest.raises(WorkerRejected, match="fingerprint"):
            worker.evaluate_shard(payload)
