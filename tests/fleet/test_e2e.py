"""End-to-end fleet runs with real ``repro serve`` subprocess workers.

The contract under test is docs/FLEET.md's headline guarantee: a
``--fleet`` campaign produces a ``result.json`` byte-identical to the
serial run — including when one of the workers is SIGKILLed
mid-generation, and when the coordinator itself is killed and resumed.
"""

import json
import random
import threading
import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.fleet import FleetEvaluator
from repro.gp.engine import GPParams
from repro.gp.generate import TreeGenerator
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings

BENCHMARK = "codrle4"


def campaign_config() -> ExperimentConfig:
    return ExperimentConfig(
        mode="specialize",
        case="hyperblock",
        benchmark=BENCHMARK,
        params=GPParams(population_size=6, generations=2, seed=0),
    )


@pytest.fixture(scope="module")
def serial_result(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("serial")
    ExperimentRunner(campaign_config(), run_dir=run_dir).run()
    return (run_dir / "result.json").read_bytes()


class TestByteIdentity:
    def test_fleet_campaign_matches_serial(self, tmp_path, serial_result):
        runner = ExperimentRunner(campaign_config(),
                                  run_dir=tmp_path / "fleet",
                                  fleet="local:2")
        runner.run()
        fleet_result = (tmp_path / "fleet" / "result.json").read_bytes()
        assert fleet_result == serial_result

    def test_coordinator_kill_and_resume_matches_serial(
            self, tmp_path, serial_result):
        """Stop the coordinator after generation 0 (the deterministic
        stand-in for SIGKILL), then resume — still on the fleet."""
        run_dir = tmp_path / "resumed"
        first = ExperimentRunner(campaign_config(), run_dir=run_dir,
                                 stop_after_generation=0, fleet="local:2")
        outcome = first.run()
        assert outcome.interrupted
        second = ExperimentRunner.from_run_dir(run_dir, fleet="local:2")
        second.run(resume=True)
        assert (run_dir / "result.json").read_bytes() == serial_result


class TestWorkerLossMidGeneration:
    def test_sigkill_one_of_two_workers_is_invisible(self):
        """SIGKILL one of two live workers while a batch is in flight;
        every value must still match the serial harness bit-for-bit."""
        case = case_study("hyperblock")
        trees = TreeGenerator(case.pset,
                              random.Random(7)).ramped_half_and_half(
                                  10, 2, 4)
        jobs = [(tree, BENCHMARK) for tree in trees]
        expected = EvaluationHarness(case, EvalSettings()).evaluator(
            "train").evaluate_batch(jobs)

        with FleetEvaluator("hyperblock", "local:2", EvalSettings(),
                            shard_items=1) as fleet:
            victim = next(slot for slot in fleet.start()
                          if slot.process is not None)

            def sigkill_soon():
                time.sleep(1.0)
                victim.process.process.kill()

            killer = threading.Thread(target=sigkill_soon, daemon=True)
            killer.start()
            got = fleet.evaluate_batch(jobs)
            killer.join()
            stats = fleet.stats()

        assert got == expected
        # The kill lands either mid-shard (worker lost, shards
        # redispatched) or between generations-worth of work on this
        # tiny batch; in both cases values are untouched.
        assert stats["jobs_dispatched"] == len(jobs)


class TestFleetEvents:
    def test_fleet_counters_reach_generation_events(self, tmp_path):
        """Campaign telemetry carries the fleet's dispatch counters."""
        run_dir = tmp_path / "events"
        ExperimentRunner(campaign_config(), run_dir=run_dir,
                         fleet="local:1").run()
        events = [json.loads(line) for line in
                  (run_dir / "events.jsonl").read_text().splitlines()]
        generations = [e for e in events if e["event"] == "generation"]
        assert generations
        # Per-generation counters are deltas; the first generation
        # dispatches every shard it evaluates.
        counters = generations[0]["counters"]
        assert counters["shards_dispatched"] > 0
        assert counters["jobs_dispatched"] > 0
