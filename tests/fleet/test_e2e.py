"""End-to-end fleet runs with real ``repro serve`` subprocess workers.

The contract under test is docs/FLEET.md's headline guarantee: a
``--fleet`` campaign produces a ``result.json`` byte-identical to the
serial run — including when one of the workers is SIGKILLed
mid-generation, and when the coordinator itself is killed and resumed.

Campaign execution goes through the shared
:class:`tests.conftest.CampaignDriver`, the same driver the
experiments and surrogate suites use via the ``campaign_run`` fixture.
"""

import json
import random
import threading
import time

import pytest

from repro.experiments import ExperimentConfig
from repro.fleet import FleetEvaluator
from repro.gp.engine import GPParams
from repro.gp.generate import TreeGenerator
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings
from tests.conftest import CampaignDriver

BENCHMARK = "codrle4"


def campaign_config() -> ExperimentConfig:
    return ExperimentConfig(
        mode="specialize",
        case="hyperblock",
        benchmark=BENCHMARK,
        params=GPParams(population_size=6, generations=2, seed=0),
    )


@pytest.fixture(scope="module")
def serial_result(tmp_path_factory):
    driver = CampaignDriver(tmp_path_factory.mktemp("serial"))
    return driver.run_full(campaign_config())


class TestByteIdentity:
    def test_fleet_campaign_matches_serial(self, campaign_run,
                                           serial_result):
        fleet_result = campaign_run.run_full(campaign_config(),
                                             name="fleet",
                                             fleet="local:2")
        assert fleet_result == serial_result

    def test_coordinator_kill_and_resume_matches_serial(
            self, campaign_run, serial_result):
        """Stop the coordinator after generation 0 (the deterministic
        stand-in for SIGKILL), then resume — still on the fleet."""
        resumed = campaign_run.run_killed_then_resumed(
            campaign_config(), stop_after=0, name="resumed",
            fleet="local:2")
        assert resumed == serial_result


class TestWorkerLossMidGeneration:
    def test_sigkill_one_of_two_workers_is_invisible(self):
        """SIGKILL one of two live workers while a batch is in flight;
        every value must still match the serial harness bit-for-bit."""
        case = case_study("hyperblock")
        trees = TreeGenerator(case.pset,
                              random.Random(7)).ramped_half_and_half(
                                  10, 2, 4)
        jobs = [(tree, BENCHMARK) for tree in trees]
        expected = EvaluationHarness(case, EvalSettings()).evaluator(
            "train").evaluate_batch(jobs)

        with FleetEvaluator("hyperblock", "local:2", EvalSettings(),
                            shard_items=1) as fleet:
            victim = next(slot for slot in fleet.start()
                          if slot.process is not None)

            def sigkill_soon():
                time.sleep(1.0)
                victim.process.process.kill()

            killer = threading.Thread(target=sigkill_soon, daemon=True)
            killer.start()
            got = fleet.evaluate_batch(jobs)
            killer.join()
            stats = fleet.stats()

        assert got == expected
        # The kill lands either mid-shard (worker lost, shards
        # redispatched) or between generations-worth of work on this
        # tiny batch; in both cases values are untouched.
        assert stats["jobs_dispatched"] == len(jobs)


class TestFleetEvents:
    def test_fleet_counters_reach_generation_events(self, campaign_run):
        """Campaign telemetry carries the fleet's dispatch counters."""
        campaign_run.run_full(campaign_config(), name="events",
                              fleet="local:1")
        events = [json.loads(line) for line in
                  (campaign_run.base / "events" / "events.jsonl")
                  .read_text().splitlines()]
        generations = [e for e in events if e["event"] == "generation"]
        assert generations
        # Per-generation counters are deltas; the first generation
        # dispatches every shard it evaluates.
        counters = generations[0]["counters"]
        assert counters["shards_dispatched"] > 0
        assert counters["jobs_dispatched"] > 0
