"""FleetEvaluator coordinator logic against scripted fake workers.

The fake worker is a minimal HTTP server whose ``/v1/evaluate-batch``
behavior is a per-request script — succeed, stream in reverse order,
shed with 503, fail one item, die mid-request — so retry, work
stealing, order-independent reduction, worker loss, and the local
fallback are each exercised deterministically without subprocesses.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.fleet import FleetError, FleetEvaluator, FleetTarget
from repro.gp.parse import parse
from repro.metaopt.baselines import BASELINE_TREES
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings

BENCHMARK = "codrle4"


def fake_value(index: int) -> float:
    return 1.0 + index * 0.25


class FakeWorker:
    """Scripted stand-in for a ``repro serve`` daemon.

    ``script`` is consumed one entry per batch request; when empty,
    requests behave as ``"ok"``.  Behaviors: ``ok``, ``reverse``,
    ``slow-ok``, ``503``, ``400``, ``item-error``, ``fatal``,
    ``hiccup`` (drop this connection, stay healthy), and ``die``
    (drop the connection and refuse everything afterwards — a dead
    process).
    """

    def __init__(self, script=(), healthy=True):
        worker = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002
                pass

            def _json(self, status, payload, headers=()):
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if not worker.healthy:
                    raise ConnectionError("scripted health failure")
                if self.path == "/healthz":
                    self._json(200, {"status": "ok"})
                elif self.path == "/v1/capabilities":
                    self._json(200, {
                        "schema": 1, "ok": True,
                        "endpoints": ["POST /v1/evaluate-batch"],
                    })
                else:
                    self._json(404, {"ok": False, "error": "no route"})

            def do_POST(self):
                if not worker.healthy:
                    raise ConnectionError("scripted health failure")
                length = int(self.headers.get("Content-Length") or 0)
                params = json.loads(self.rfile.read(length))
                behavior = (worker.script.pop(0)
                            if worker.script else "ok")
                worker.batches.append(behavior)
                if behavior == "hiccup":
                    raise ConnectionError("scripted hiccup")
                if behavior == "die":
                    worker.healthy = False
                    raise ConnectionError("scripted death")
                if behavior == "503":
                    self._json(503, {"ok": False, "error": "draining"},
                               headers=[("Retry-After", "0")])
                    return
                if behavior == "400":
                    self._json(400, {"ok": False, "error": "bad batch"})
                    return
                if behavior == "slow-ok":
                    time.sleep(0.5)
                items = params["items"]
                if behavior == "reverse":
                    items = list(reversed(items))
                lines = []
                for item in items:
                    if behavior == "item-error":
                        lines.append({"index": item["index"],
                                      "ok": False, "error": "boom"})
                    else:
                        lines.append({"index": item["index"], "ok": True,
                                      "value": fake_value(item["index"])})
                if behavior == "fatal":
                    lines = [{"ok": False, "fatal": True,
                              "error": "scripted fatal"}]
                lines.append({"done": True, "count": len(lines)})
                body = "".join(json.dumps(line) + "\n"
                               for line in lines).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self.script = list(script)
        self.batches: list[str] = []
        self.healthy = healthy
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.httpd.handle_error = lambda *args: None  # scripted deaths
        self.thread = threading.Thread(target=self.httpd.serve_forever,
                                       daemon=True)
        self.thread.start()

    @property
    def target(self) -> FleetTarget:
        host, port = self.httpd.server_address[:2]
        return FleetTarget("remote", f"{host}:{port}")

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(5.0)


def make_jobs(count: int):
    """Distinct constant trees; the coordinator's pending index for
    job *i* is exactly *i*, so fake values are predictable."""
    return [(parse(f"{float(i + 1)}"), BENCHMARK) for i in range(count)]


def make_fleet(workers, **kwargs):
    kwargs.setdefault("backoff", 0.01)
    kwargs.setdefault("max_backoff", 0.05)
    return FleetEvaluator("hyperblock", [w.target for w in workers],
                          EvalSettings(), **kwargs)


class TestHappyPath:
    def test_values_come_back_in_job_order(self):
        worker = FakeWorker()
        try:
            with make_fleet([worker], shard_items=2) as fleet:
                values = fleet.evaluate_batch(make_jobs(6))
            assert values == [fake_value(i) for i in range(6)]
        finally:
            worker.close()

    def test_reversed_streams_reduce_identically(self):
        workers = [FakeWorker(script=["reverse"] * 8) for _ in range(2)]
        try:
            with make_fleet(workers, shard_items=2) as fleet:
                values = fleet.evaluate_batch(make_jobs(8))
            assert values == [fake_value(i) for i in range(8)]
        finally:
            for worker in workers:
                worker.close()

    def test_memo_spares_repeat_candidates(self):
        worker = FakeWorker()
        try:
            jobs = make_jobs(4)
            with make_fleet([worker]) as fleet:
                first = fleet.evaluate_batch(jobs)
                dispatched = fleet.shards_dispatched
                second = fleet.evaluate_batch(jobs)
            assert first == second
            assert fleet.shards_dispatched == dispatched
        finally:
            worker.close()

    def test_duplicate_jobs_in_one_batch_collapse(self):
        worker = FakeWorker()
        try:
            tree = parse("1.0")
            with make_fleet([worker]) as fleet:
                values = fleet.evaluate_batch(
                    [(tree, BENCHMARK), (tree, BENCHMARK)])
            assert values[0] == values[1]
            assert fleet.jobs_dispatched == 1
        finally:
            worker.close()


class TestFaultTolerance:
    def test_backpressure_503_is_retried(self):
        worker = FakeWorker(script=["503", "ok"])
        try:
            with make_fleet([worker], shard_items=4) as fleet:
                values = fleet.evaluate_batch(make_jobs(3))
            assert values == [fake_value(i) for i in range(3)]
            assert fleet.shards_retried == 1
        finally:
            worker.close()

    def test_item_error_is_retried(self):
        worker = FakeWorker(script=["item-error", "ok"])
        try:
            with make_fleet([worker], shard_items=4) as fleet:
                values = fleet.evaluate_batch(make_jobs(2))
            assert values == [fake_value(i) for i in range(2)]
            assert fleet.shards_retried == 1
        finally:
            worker.close()

    def test_transient_death_of_healthy_worker_is_retried(self):
        worker = FakeWorker(script=["hiccup", "ok"])
        try:
            with make_fleet([worker], shard_items=4) as fleet:
                values = fleet.evaluate_batch(make_jobs(2))
            assert values == [fake_value(i) for i in range(2)]
        finally:
            worker.close()

    def test_permanent_rejection_raises(self):
        worker = FakeWorker(script=["400"])
        try:
            with make_fleet([worker]) as fleet:
                with pytest.raises(FleetError, match="bad batch"):
                    fleet.evaluate_batch(make_jobs(2))
        finally:
            worker.close()

    def test_retries_exhaust_to_permanent_failure(self):
        worker = FakeWorker(script=["item-error"] * 10)
        try:
            with make_fleet([worker], retries=2) as fleet:
                with pytest.raises(FleetError, match="exhausted"):
                    fleet.evaluate_batch(make_jobs(1))
        finally:
            worker.close()

    def test_dead_worker_shards_redispatch_to_survivor(self):
        dead = FakeWorker(script=["die"])
        alive = FakeWorker()
        try:
            with make_fleet([dead, alive], shard_items=1) as fleet:
                values = fleet.evaluate_batch(make_jobs(6))
            assert values == [fake_value(i) for i in range(6)]
            assert fleet.workers_lost == 1
        finally:
            dead.close()
            alive.close()

    def test_whole_fleet_death_falls_back_to_local(self):
        """All workers dead mid-batch: the coordinator evaluates the
        leftovers in-process, with real values."""
        worker = FakeWorker(script=["die"])
        try:
            tree = BASELINE_TREES["hyperblock"]()
            expected = EvaluationHarness(case_study("hyperblock")).speedup(
                tree, BENCHMARK, "train")
            with make_fleet([worker]) as fleet:
                values = fleet.evaluate_batch([(tree, BENCHMARK)])
            assert values == [expected]
            assert fleet.workers_lost == 1
            assert fleet.local_fallback_jobs == 1
        finally:
            worker.close()


class TestWorkStealing:
    def test_fast_worker_steals_from_straggler(self):
        slow = FakeWorker(script=["slow-ok"] * 20)
        fast = FakeWorker()
        try:
            with make_fleet([slow, fast], shard_items=1) as fleet:
                values = fleet.evaluate_batch(make_jobs(8))
            assert values == [fake_value(i) for i in range(8)]
            assert fleet.shards_stolen >= 1
        finally:
            slow.close()
            fast.close()


class TestStats:
    def test_stats_shape(self):
        worker = FakeWorker()
        try:
            with make_fleet([worker]) as fleet:
                fleet.evaluate_batch(make_jobs(2))
                stats = fleet.stats()
            assert stats["workers"] == 1
            assert stats["jobs_dispatched"] == 2
            assert stats["batches_dispatched"] == 1
            assert stats["shards_dispatched"] >= 1
        finally:
            worker.close()

    def test_close_is_idempotent(self):
        worker = FakeWorker()
        try:
            fleet = make_fleet([worker])
            fleet.start()
            fleet.close()
            fleet.close()
        finally:
            worker.close()
