"""Priority wrappers, primitive sets, and the baseline expressions."""

import random

import pytest

from repro.gp.parse import parse, unparse
from repro.gp.types import BOOL, REAL
from repro.metaopt.baselines import (
    CHOW_HENNESSY_TEXT,
    IMPACT_HYPERBLOCK_TEXT,
    ORC_PREFETCH_TEXT,
    chow_hennessy_tree,
    impact_hyperblock_tree,
    orc_prefetch_tree,
)
from repro.metaopt.psets import (
    HYPERBLOCK_PSET,
    PREFETCH_PSET,
    REGALLOC_PSET,
)
from repro.metaopt.priority import PriorityFunction
from repro.passes.hyperblock import impact_priority
from repro.passes.prefetch import orc_confidence
from repro.passes.regalloc import chow_hennessy_savings


class TestPrimitiveSets:
    def test_hyperblock_pset_real(self):
        assert HYPERBLOCK_PSET.result_type is REAL
        assert "exec_ratio" in HYPERBLOCK_PSET.real_features
        assert "mem_hazard" in HYPERBLOCK_PSET.bool_features

    def test_regalloc_pset_real(self):
        assert REGALLOC_PSET.result_type is REAL
        assert "w" in REGALLOC_PSET.real_features

    def test_prefetch_pset_bool(self):
        assert PREFETCH_PSET.result_type is BOOL
        assert "est_trip_count" in PREFETCH_PSET.real_features
        assert "trip_known" in PREFETCH_PSET.bool_features


class TestPriorityFunction:
    def test_real_valued_wrapper(self):
        fn = PriorityFunction.from_text("(mul exec_ratio 2.0)",
                                        HYPERBLOCK_PSET)
        env = {"exec_ratio": 0.5}
        assert fn(env) == 1.0

    def test_bool_valued_wrapper(self):
        fn = PriorityFunction.from_text("(gt est_trip_count 8.0)",
                                        PREFETCH_PSET)
        assert fn({"est_trip_count": 10.0}) is True
        assert fn({"est_trip_count": 5.0}) is False

    def test_missing_feature_is_zero(self):
        fn = PriorityFunction.from_text("nosuchfeature", HYPERBLOCK_PSET)
        assert fn({}) == 0.0

    def test_missing_feature_is_false_for_bool(self):
        fn = PriorityFunction.from_text("(gt nosuch 1.0)", PREFETCH_PSET)
        assert fn({}) is False

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            PriorityFunction.from_text("(gt a b)", HYPERBLOCK_PSET)

    def test_text_round_trip(self):
        fn = PriorityFunction.from_text("(add exec_ratio 1.0)",
                                        HYPERBLOCK_PSET)
        assert "exec_ratio" in fn.text


def random_hyperblock_env(rng):
    dep = rng.uniform(1, 12)
    ops = rng.uniform(1, 40)
    dep_max = dep * rng.uniform(1.0, 2.0)
    ops_max = ops * rng.uniform(1.0, 2.0)
    return {
        "dep_height": dep, "dep_height_max": dep_max,
        "num_ops": ops, "num_ops_max": ops_max,
        "exec_ratio": rng.uniform(0, 1),
        "mem_hazard": rng.random() < 0.3,
        "has_unsafe_jsr": rng.random() < 0.2,
    }


class TestBaselineEquivalence:
    """The s-expression baselines compute exactly what the native
    implementations in the passes compute."""

    def test_impact_equation_one(self):
        tree = impact_hyperblock_tree()
        fn = PriorityFunction(tree)
        rng = random.Random(0)
        for _ in range(200):
            env = random_hyperblock_env(rng)
            assert fn(env) == pytest.approx(impact_priority(env))

    def test_chow_hennessy_equation_two(self):
        tree = chow_hennessy_tree()
        fn = PriorityFunction(tree)
        rng = random.Random(1)
        for _ in range(200):
            env = {
                "w": rng.uniform(0, 1),
                "uses": float(rng.randrange(10)),
                "defs": float(rng.randrange(5)),
                "ld_save": 2.0,
                "st_save": 1.0,
            }
            assert fn(env) == pytest.approx(chow_hennessy_savings(env))

    def test_orc_confidence(self):
        tree = orc_prefetch_tree()
        fn = PriorityFunction(tree)
        rng = random.Random(2)
        for _ in range(200):
            env = {
                "trip_known": rng.random() < 0.5,
                "static_trip": float(rng.randrange(0, 40)),
                "est_trip_count": rng.uniform(0, 40),
            }
            assert fn(env) == orc_confidence(env)

    def test_baseline_texts_parse_with_their_psets(self):
        parse(IMPACT_HYPERBLOCK_TEXT, HYPERBLOCK_PSET.bool_feature_set())
        parse(CHOW_HENNESSY_TEXT, REGALLOC_PSET.bool_feature_set())
        parse(ORC_PREFETCH_TEXT, PREFETCH_PSET.bool_feature_set())

    def test_baseline_features_exist_in_psets(self):
        from repro.gp.nodes import BArg, RArg

        pairs = [
            (impact_hyperblock_tree(), HYPERBLOCK_PSET),
            (chow_hennessy_tree(), REGALLOC_PSET),
            (orc_prefetch_tree(), PREFETCH_PSET),
        ]
        for tree, pset in pairs:
            for node in tree.walk():
                if isinstance(node, RArg):
                    assert node.name in pset.real_features, node.name
                if isinstance(node, BArg):
                    assert node.name in pset.bool_features, node.name
