"""The ``repro.metaopt.features`` → ``repro.metaopt.psets`` rename:
the old module keeps working for one release, with a warning."""

import importlib
import sys
import warnings

import pytest


def fresh_import(name):
    sys.modules.pop(name, None)
    return importlib.import_module(name)


class TestDeprecationShim:
    def test_old_module_warns(self):
        with pytest.warns(DeprecationWarning, match="psets"):
            fresh_import("repro.metaopt.features")

    def test_old_module_reexports_everything(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = fresh_import("repro.metaopt.features")
        new = importlib.import_module("repro.metaopt.psets")
        for name in ("PSETS", "HYPERBLOCK_PSET", "REGALLOC_PSET",
                     "PREFETCH_PSET", "SCHEDULE_PSET"):
            assert getattr(old, name) is getattr(new, name)

    def test_new_module_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fresh_import("repro.metaopt.psets")
