"""EvalSettings: the unified evaluation-settings record and the
one-release deprecation shim for the old per-flag keyword arguments."""

import dataclasses

import pytest

from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings, settings_from_kwargs


class TestEvalSettings:
    def test_defaults(self):
        settings = EvalSettings()
        assert settings.noise_stddev == 0.0
        assert settings.fitness_cache_dir is None
        assert settings.verify_outputs is False
        assert settings.use_snapshots is True
        assert settings.collect_metrics is False

    def test_frozen_and_hashable(self):
        settings = EvalSettings(noise_stddev=0.01)
        with pytest.raises(dataclasses.FrozenInstanceError):
            settings.noise_stddev = 0.5
        assert settings == EvalSettings(noise_stddev=0.01)
        assert hash(settings) == hash(EvalSettings(noise_stddev=0.01))

    def test_json_round_trip(self):
        settings = EvalSettings(noise_stddev=0.02, verify_outputs=True,
                                fitness_cache_dir="/tmp/cache")
        wire = settings.to_json_dict()
        assert wire == {
            "noise_stddev": 0.02,
            "fitness_cache_dir": "/tmp/cache",
            "verify_outputs": True,
            "use_snapshots": True,
            "collect_metrics": False,
        }
        assert EvalSettings.from_json_dict(wire) == settings

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown EvalSettings"):
            EvalSettings.from_json_dict({"noise": 0.1})

    def test_path_normalized_for_equality(self, tmp_path):
        assert (EvalSettings(fitness_cache_dir=tmp_path)
                == EvalSettings(fitness_cache_dir=str(tmp_path)))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            EvalSettings(noise_stddev=-0.1)

    def test_replace(self):
        settings = EvalSettings().replace(use_snapshots=False)
        assert settings.use_snapshots is False
        assert settings != EvalSettings()


class TestDeprecatedKwargs:
    def test_plain_settings_pass_through(self):
        settings = EvalSettings(noise_stddev=0.3)
        assert settings_from_kwargs(settings, {}, "X") is settings

    def test_no_args_yields_defaults(self):
        assert settings_from_kwargs(None, {}, "X") == EvalSettings()

    def test_deprecated_kwargs_fold_with_warning(self):
        with pytest.warns(DeprecationWarning, match="noise_stddev"):
            settings = settings_from_kwargs(
                None, {"noise_stddev": 0.5, "verify_outputs": True}, "X")
        assert settings == EvalSettings(noise_stddev=0.5,
                                        verify_outputs=True)

    def test_both_forms_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            settings_from_kwargs(EvalSettings(), {"noise_stddev": 0.5},
                                 "X")

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            settings_from_kwargs(None, {"typo": 1}, "X")

    def test_harness_still_accepts_old_kwargs(self):
        case = case_study("hyperblock")
        with pytest.warns(DeprecationWarning):
            harness = EvaluationHarness(case, noise_stddev=0.25,
                                        use_snapshots=False)
        assert harness.settings == EvalSettings(noise_stddev=0.25,
                                                use_snapshots=False)
        assert harness.noise_stddev == 0.25
        assert harness.use_snapshots is False

    def test_harness_rejects_settings_plus_kwargs(self):
        case = case_study("hyperblock")
        with pytest.raises(TypeError, match="not both"):
            EvaluationHarness(case, EvalSettings(), noise_stddev=0.1)
