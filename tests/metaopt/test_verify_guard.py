"""The harness's differential guard (``verify_outputs=True``).

A candidate priority function can only change *performance*, never
*meaning* — unless the backend miscompiles.  With the guard on, every
fresh simulation is checked against the functional interpreter;
miscompiling candidates get worst-case fitness (0.0) and their results
are never persisted to the fitness cache.
"""

import pytest

from repro.machine import sim as sim_mod
from repro.machine.descr import DEFAULT_EPIC
from repro.metaopt.fitness_cache import FitnessCache
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings

BENCHMARK = "codrle4"


@pytest.fixture
def corrupted_simulator(monkeypatch):
    original = sim_mod.Simulator.run

    def corrupted(self, entry="main"):
        result = original(self, entry)
        result.outputs = list(result.outputs) + [424242]
        return result

    monkeypatch.setattr(sim_mod.Simulator, "run", corrupted)


class TestGuard:
    def test_clean_run_unaffected(self):
        guarded = EvaluationHarness(case_study("hyperblock"),
                                    EvalSettings(verify_outputs=True))
        unguarded = EvaluationHarness(case_study("hyperblock"))
        tree = guarded.case.baseline_tree()
        assert guarded.speedup(tree, BENCHMARK) == \
            unguarded.speedup(tree, BENCHMARK)
        assert guarded.stats()["divergences"] == 0

    def test_divergence_zeroes_fitness(self, corrupted_simulator):
        harness = EvaluationHarness(case_study("hyperblock"),
                                    EvalSettings(verify_outputs=True))
        tree = harness.case.baseline_tree()
        assert harness.speedup(tree, BENCHMARK) == 0.0
        assert harness.stats()["divergences"] > 0
        benchmark, dataset, divergence = harness.divergences[0]
        assert benchmark == BENCHMARK
        assert dataset == "train"
        assert divergence.channel == "out"

    def test_guard_off_misses_the_miscompile(self, corrupted_simulator):
        harness = EvaluationHarness(case_study("hyperblock"))
        tree = harness.case.baseline_tree()
        # without the guard the wrong-answer binary is scored normally
        assert harness.speedup(tree, BENCHMARK) > 0.0
        assert "divergences" not in harness.stats()

    def test_diverged_results_not_persisted(self, corrupted_simulator):
        cache = FitnessCache(None)
        harness = EvaluationHarness(case_study("hyperblock"),
                                    EvalSettings(verify_outputs=True),
                                    fitness_cache=cache)
        harness.speedup(harness.case.baseline_tree(), BENCHMARK)
        assert cache.stores == 0

    def test_clean_results_are_persisted(self):
        cache = FitnessCache(None)
        harness = EvaluationHarness(case_study("hyperblock"),
                                    EvalSettings(verify_outputs=True),
                                    fitness_cache=cache)
        harness.speedup(harness.case.baseline_tree(), BENCHMARK)
        assert cache.stores > 0


class TestCacheKeying:
    def test_verified_flag_partitions_the_cache(self):
        cache = FitnessCache(None)
        tree = case_study("hyperblock").baseline_tree()
        priority_key = ("tree",) + tree.structural_key()
        common = dict(case_name="hyperblock", machine=DEFAULT_EPIC,
                      noise_stddev=0.0, priority_key=priority_key,
                      benchmark=BENCHMARK, dataset="train")
        unverified = cache.result_key(**common)
        verified = cache.result_key(**common, verified=True)
        assert unverified is not None and verified is not None
        assert unverified != verified

    def test_guarded_harness_never_reads_unverified_entries(self):
        """An unverified cache entry written by a guardless run must not
        satisfy a guarded run's lookup."""
        cache = FitnessCache(None)
        unguarded = EvaluationHarness(case_study("hyperblock"),
                                      fitness_cache=cache)
        tree = unguarded.case.baseline_tree()
        unguarded.speedup(tree, BENCHMARK)
        stored = cache.stores

        guarded = EvaluationHarness(case_study("hyperblock"),
                                    EvalSettings(verify_outputs=True),
                                    fitness_cache=cache)
        guarded.speedup(tree, BENCHMARK)
        assert guarded.cache_hits == 0  # no cross-pollination
        assert cache.stores > stored  # re-simulated and stored anew
