"""Specialization and generalization drivers (scaled-down GP runs)."""

import pytest

from repro.gp.engine import GPParams
from repro.metaopt.generalize import (
    build_generalize_engine,
    cross_validate,
    finalize_generalization,
)
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.specialize import (
    build_specialize_engine,
    finalize_specialization,
)

TINY = GPParams(population_size=10, generations=3, seed=5)


def specialize(case, benchmark, params, harness=None, seed_baseline=True):
    harness = harness or EvaluationHarness(case)
    engine = build_specialize_engine(case, benchmark, params, harness,
                                     seed_baseline=seed_baseline)
    return finalize_specialization(harness, benchmark, engine.run())


def generalize(case, training_set, params, harness=None, subset_size=None):
    harness = harness or EvaluationHarness(case)
    engine = build_generalize_engine(case, tuple(training_set), params,
                                     harness, subset_size=subset_size)
    return finalize_generalization(case, harness, tuple(training_set),
                                   engine.run())


@pytest.fixture(scope="module")
def hb_harness():
    return EvaluationHarness(case_study("hyperblock"))


class TestSpecialize:
    def test_seeded_run_never_loses_to_baseline(self, hb_harness):
        result = specialize(hb_harness.case, "rawcaudio", TINY,
                            harness=hb_harness)
        assert result.train_speedup >= 1.0 - 1e-9

    def test_result_fields(self, hb_harness):
        result = specialize(hb_harness.case, "rawcaudio", TINY,
                            harness=hb_harness)
        assert result.benchmark == "rawcaudio"
        assert len(result.history) == TINY.generations
        assert result.best_expression
        assert result.baseline_cycles_train > 0
        assert result.best_cycles_train <= result.baseline_cycles_train
        assert len(result.fitness_curve()) == TINY.generations

    def test_novel_speedup_computed(self, hb_harness):
        result = specialize(hb_harness.case, "rawcaudio", TINY,
                            harness=hb_harness)
        assert result.novel_speedup > 0

    def test_unseeded_run(self, hb_harness):
        result = specialize(hb_harness.case, "rawcaudio", TINY,
                            harness=hb_harness, seed_baseline=False)
        assert result.train_speedup > 0

    def test_deterministic(self):
        case = case_study("hyperblock")
        first = specialize(case, "codrle4", TINY)
        second = specialize(case, "codrle4", TINY)
        assert first.best_expression == second.best_expression
        assert first.train_speedup == second.train_speedup


class TestGeneralize:
    def test_dss_training_run(self, hb_harness):
        result = generalize(
            hb_harness.case,
            ("rawcaudio", "codrle4", "decodrle4"),
            GPParams(population_size=10, generations=4, seed=2),
            harness=hb_harness,
            subset_size=2,
        )
        assert len(result.training) == 3
        assert result.average_train_speedup() >= 0.99
        assert result.best_expression
        for score in result.training:
            assert score.train_speedup > 0
            assert score.novel_speedup > 0

    def test_empty_training_set_rejected(self, hb_harness):
        with pytest.raises(ValueError):
            generalize(hb_harness.case, (), TINY)

    def test_cross_validate(self, hb_harness):
        tree = hb_harness.case.baseline_tree()
        result = cross_validate(hb_harness.case, tree,
                                ("toast", "mpeg2dec"),
                                harness=hb_harness)
        assert len(result.scores) == 2
        # the baseline scores exactly 1.0 against itself
        assert result.average_train_speedup() == pytest.approx(1.0)
        assert result.machine_name == hb_harness.case.machine.name

    def test_empty_training_averages_raise_clearly(self):
        """The documented contract: averaging with no recorded scores
        raises ValueError, not a bare ZeroDivisionError."""
        from repro.metaopt.generalize import (
            CrossValidationResult,
            GeneralizationResult,
        )

        result = GeneralizationResult(best_tree=None, training=[],
                                      history=[], evaluations=0)
        with pytest.raises(ValueError, match="empty"):
            result.average_train_speedup()
        with pytest.raises(ValueError, match="empty"):
            result.average_novel_speedup()
        cross = CrossValidationResult(scores=[], machine_name="epic")
        with pytest.raises(ValueError, match="empty"):
            cross.average_train_speedup()
        with pytest.raises(ValueError, match="empty"):
            cross.average_novel_speedup()

    def test_cross_validate_other_machine(self):
        from repro.machine.descr import REGALLOC_MACHINE_B

        case_b = case_study("regalloc", machine=REGALLOC_MACHINE_B)
        tree = case_b.baseline_tree()
        result = cross_validate(case_b, tree, ("rawcaudio",))
        assert result.machine_name == REGALLOC_MACHINE_B.name
        assert result.scores[0].train_speedup == pytest.approx(1.0)
