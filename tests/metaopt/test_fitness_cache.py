"""Persistent fitness cache: disk round-trips, key discrimination,
invalidation, and the warm-rerun guarantee (a second run touching only
cached candidates performs zero compiles and zero simulations)."""

import json

import pytest

from repro.machine.descr import DEFAULT_EPIC, REGALLOC_MACHINE
from repro.machine.sim import SimResult
from repro.metaopt.fitness_cache import (
    FitnessCache,
    cache_from_env,
    machine_fingerprint,
    pipeline_fingerprint,
)
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings


def sample_result(cycles=1234):
    return SimResult(cycles=cycles, return_value=None, outputs=[7, 8],
                     dynamic_ops=10, bundles=5)


class TestKeying:
    def test_tree_keys_stable_and_discriminating(self):
        cache = FitnessCache(None)
        base = dict(case_name="hyperblock", machine=DEFAULT_EPIC,
                    noise_stddev=0.0,
                    priority_key=("tree", ("rconst", 1.0)),
                    benchmark="codrle4", dataset="train")
        key = cache.result_key(**base)
        assert key == cache.result_key(**base)
        for change in (
            {"case_name": "regalloc"},
            {"machine": REGALLOC_MACHINE},
            {"noise_stddev": 0.02},
            {"priority_key": ("tree", ("rconst", 2.0))},
            {"benchmark": "codrle5"},
            {"dataset": "novel"},
        ):
            assert cache.result_key(**{**base, **change}) != key

    def test_native_priorities_never_persisted(self):
        cache = FitnessCache(None)
        key = cache.result_key(
            case_name="hyperblock", machine=DEFAULT_EPIC, noise_stddev=0.0,
            priority_key=("native", "<lambda>", 12345),
            benchmark="codrle4", dataset="train")
        assert key is None

    def test_fingerprints_are_stable(self):
        assert pipeline_fingerprint() == pipeline_fingerprint()
        assert (machine_fingerprint(DEFAULT_EPIC)
                == machine_fingerprint(DEFAULT_EPIC))
        assert (machine_fingerprint(DEFAULT_EPIC)
                != machine_fingerprint(REGALLOC_MACHINE))


class TestRoundTrip:
    def test_disk_roundtrip_across_instances(self, tmp_path):
        writer = FitnessCache(tmp_path)
        key = writer.result_key(
            case_name="hyperblock", machine=DEFAULT_EPIC, noise_stddev=0.0,
            priority_key=("tree", ("rconst", 1.0)),
            benchmark="codrle4", dataset="train")
        result = sample_result()
        writer.put(key, result)

        reader = FitnessCache(tmp_path)
        recalled = reader.get(key)
        assert recalled == result
        assert reader.disk_hits == 1
        # second lookup is served from memory
        reader.get(key)
        assert reader.disk_hits == 1

    def test_memory_only_cache(self):
        cache = FitnessCache(None)
        key = "a" * 64
        cache.put(key, sample_result())
        assert cache.get(key).cycles == 1234
        cache.clear_memory()
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = FitnessCache(tmp_path)
        key = "b" * 64
        cache.put(key, sample_result())
        path = cache._path_for(key)
        path.write_text("not json {")
        fresh = FitnessCache(tmp_path)
        assert fresh.get(key) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = FitnessCache(tmp_path)
        key = "c" * 64
        path = cache._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"cycles": 1, "no_such_field": 2}))
        assert cache.get(key) is None


class TestEnvResolution:
    def test_disabled_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FITNESS_CACHE", str(tmp_path))
        assert cache_from_env(disabled=True) is None

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FITNESS_CACHE", str(tmp_path / "env"))
        cache = cache_from_env(explicit_dir=str(tmp_path / "explicit"))
        assert cache.root == tmp_path / "explicit"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FITNESS_CACHE", str(tmp_path / "env"))
        assert cache_from_env().root == tmp_path / "env"

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FITNESS_CACHE", raising=False)
        assert cache_from_env() is None


class TestHarnessIntegration:
    def test_warm_rerun_skips_all_simulation(self, tmp_path):
        from repro.metaopt.priority import PriorityFunction

        case = case_study("hyperblock")
        tree = PriorityFunction.from_text(
            "(add exec_ratio 2.0)", case.pset).tree

        cold = EvaluationHarness(case, fitness_cache=FitnessCache(tmp_path))
        cold_speedup = cold.speedup(tree, "codrle4")
        assert cold.sim_count == 2 and cold.compile_count == 2

        warm = EvaluationHarness(case, fitness_cache=FitnessCache(tmp_path))
        warm_speedup = warm.speedup(tree, "codrle4")
        assert warm_speedup == cold_speedup  # bit-identical
        assert warm.sim_count == 0
        assert warm.compile_count == 0
        assert warm.cache_hits == 2  # baseline + candidate

    def test_noise_levels_do_not_cross_contaminate(self, tmp_path):
        case = case_study("hyperblock")
        tree = case.baseline_tree()
        clean = EvaluationHarness(case, fitness_cache=FitnessCache(tmp_path))
        noisy = EvaluationHarness(case, EvalSettings(noise_stddev=0.5),
                                  fitness_cache=FitnessCache(tmp_path))
        clean_cycles = clean.simulate(tree, "codrle4").cycles
        noisy_cycles = noisy.simulate(tree, "codrle4").cycles
        assert noisy.cache_hits == 0
        # and the noisy measurement is reproducible from its own entry
        noisy_again = EvaluationHarness(case, EvalSettings(noise_stddev=0.5),
                                        fitness_cache=FitnessCache(tmp_path))
        assert noisy_again.simulate(tree, "codrle4").cycles == noisy_cycles
        assert noisy_again.sim_count == 0
        assert clean_cycles == clean.simulate(tree, "codrle4").cycles


class TestScan:
    def put_with_meta(self, cache, key, cycles, **meta_overrides):
        meta = dict(expression="(add reg_count 1.0)", case="regalloc",
                    benchmark="codrle4", dataset="train",
                    noise_stddev=0.0, verified=True)
        meta.update(meta_overrides)
        cache.put(key, sample_result(cycles), meta=meta)
        return meta

    def test_scan_yields_records_with_meta(self, tmp_path):
        cache = FitnessCache(tmp_path)
        meta = self.put_with_meta(cache, "d" * 64, cycles=500)
        records = list(FitnessCache(tmp_path).scan())
        assert len(records) == 1
        assert records[0].key == "d" * 64
        assert records[0].result.cycles == 500
        assert records[0].meta == meta

    def test_scan_order_is_path_sorted(self, tmp_path):
        cache = FitnessCache(tmp_path)
        for key in ("f" * 64, "a" * 64, "c" * 64):
            self.put_with_meta(cache, key, cycles=100)
        keys = [record.key for record in FitnessCache(tmp_path).scan()]
        assert keys == sorted(keys)

    def test_scan_reads_meta_less_and_legacy_entries(self, tmp_path):
        cache = FitnessCache(tmp_path)
        cache.put("e" * 64, sample_result(250))  # no meta
        legacy = cache._path_for("1" * 64)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(json.dumps(  # pre-envelope flat SimResult
            {"cycles": 9, "return_value": None, "outputs": [],
             "dynamic_ops": 1, "bundles": 1}))
        records = {r.key: r for r in FitnessCache(tmp_path).scan()}
        assert records["e" * 64].meta is None
        assert records["1" * 64].result.cycles == 9
        assert records["1" * 64].meta is None

    def test_scan_skips_corrupt_entries(self, tmp_path):
        cache = FitnessCache(tmp_path)
        self.put_with_meta(cache, "b" * 64, cycles=100)
        cache._path_for("9" * 64).parent.mkdir(parents=True,
                                               exist_ok=True)
        cache._path_for("9" * 64).write_text("not json {")
        records = list(FitnessCache(tmp_path).scan())
        assert [r.key for r in records] == ["b" * 64]

    def test_scan_on_memory_only_cache_is_empty(self):
        cache = FitnessCache(None)
        cache.put("a" * 64, sample_result())
        assert list(cache.scan()) == []

    def test_harness_writes_meta(self, tmp_path):
        case = case_study("hyperblock")
        harness = EvaluationHarness(
            case, fitness_cache=FitnessCache(tmp_path))
        harness.speedup(case.baseline_tree(), "codrle4")
        metas = [r.meta for r in FitnessCache(tmp_path).scan()]
        assert metas and all(m is not None for m in metas)
        for meta in metas:
            assert meta["case"] == "hyperblock"
            assert meta["benchmark"] == "codrle4"
            assert meta["expression"]
