"""Parallel fitness evaluation agrees with the sequential harness."""

import pytest

from repro.gp.engine import GPEngine, GPParams
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.parallel import ParallelEvaluator
from repro.metaopt.settings import EvalSettings


class TestParallelEvaluator:
    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            ParallelEvaluator("hyperblock", processes=0)

    def test_matches_sequential(self):
        case = case_study("hyperblock")
        sequential = EvaluationHarness(case)
        baseline = case.baseline_tree()
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            parallel_value = parallel(baseline, "codrle4")
        sequential_value = sequential.speedup(baseline, "codrle4")
        assert parallel_value == pytest.approx(sequential_value)

    def test_batch_memoized(self):
        case = case_study("hyperblock")
        baseline = case.baseline_tree()
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            first = parallel.evaluate_batch(
                [(baseline, "codrle4"), (baseline, "codrle4")]
            )
            dispatched = parallel.jobs_dispatched
            second = parallel.evaluate_batch([(baseline, "codrle4")])
            assert parallel.jobs_dispatched == dispatched  # cached
        assert first == [first[0], first[0]]
        assert second == first[:1]

    def test_drives_gp_engine(self):
        case = case_study("hyperblock")
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            engine = GPEngine(
                pset=case.pset,
                evaluator=parallel,
                benchmarks=("codrle4",),
                params=GPParams(population_size=6, generations=2, seed=3),
                seed_trees=(case.baseline_tree(),),
            )
            result = engine.run()
        assert result.best.fitness >= 1.0 - 1e-9

    def test_serial_fallback_skips_pool(self):
        case = case_study("hyperblock")
        baseline = case.baseline_tree()
        with ParallelEvaluator("hyperblock", processes=1) as serial:
            value = serial(baseline, "codrle4")
            assert serial._pool is None  # never spawned
        sequential = EvaluationHarness(case).speedup(baseline, "codrle4")
        assert value == sequential

    def test_close_is_idempotent_and_restartable(self):
        case = case_study("hyperblock")
        baseline = case.baseline_tree()
        evaluator = ParallelEvaluator("hyperblock", processes=2)
        first = evaluator(baseline, "codrle4")
        evaluator.close()
        evaluator.close()  # idempotent
        evaluator.close(force=True)
        # a fresh pool is built on demand after close()
        assert evaluator.evaluate_batch([(baseline, "codrle4")]) == [first]
        evaluator.close()


def _run_engine(evaluator, case, processes_label):
    engine = GPEngine(
        pset=case.pset,
        evaluator=evaluator,
        benchmarks=("codrle4",),
        params=GPParams(population_size=8, generations=3, seed=11),
        seed_trees=(case.baseline_tree(),),
    )
    result = engine.run()
    from repro.gp.parse import unparse

    return (result.fitness_curve(), unparse(result.best.tree),
            result.evaluations)


class TestParallelSerialEquivalence:
    """Batching and process fan-out must never change the evolution:
    the fitness curve and champion are bit-identical to the serial
    seed path for any worker count."""

    def test_processes_1_2_4_identical(self):
        case = case_study("hyperblock")
        reference = _run_engine(
            EvaluationHarness(case).evaluator("train"), case, "serial")
        for processes in (1, 2, 4):
            with ParallelEvaluator("hyperblock",
                                   processes=processes) as evaluator:
                outcome = _run_engine(evaluator, case, str(processes))
            assert outcome == reference, f"processes={processes} diverged"


class TestPersistentCacheIntegration:
    def test_second_run_zero_simulator_invocations(self, tmp_path):
        case = case_study("hyperblock")
        cache_dir = str(tmp_path / "fitness")

        with ParallelEvaluator(
                "hyperblock", processes=1,
                settings=EvalSettings(fitness_cache_dir=cache_dir)) as cold:
            cold_outcome = _run_engine(cold, case, "cold")
            assert cold._serial_harness.sim_count > 0

        with ParallelEvaluator(
                "hyperblock", processes=1,
                settings=EvalSettings(fitness_cache_dir=cache_dir)) as warm:
            warm_outcome = _run_engine(warm, case, "warm")
            assert warm._serial_harness.sim_count == 0
            assert warm._serial_harness.compile_count == 0
        assert warm_outcome == cold_outcome

    def test_pool_workers_share_cache_with_serial(self, tmp_path):
        case = case_study("hyperblock")
        cache_dir = str(tmp_path / "fitness")
        with ParallelEvaluator(
                "hyperblock", processes=2,
                settings=EvalSettings(fitness_cache_dir=cache_dir)) as cold:
            cold_outcome = _run_engine(cold, case, "pool")
        with ParallelEvaluator(
                "hyperblock", processes=1,
                settings=EvalSettings(fitness_cache_dir=cache_dir)) as warm:
            warm_outcome = _run_engine(warm, case, "warm-serial")
            assert warm._serial_harness.sim_count == 0
        assert warm_outcome == cold_outcome
