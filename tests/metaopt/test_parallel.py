"""Parallel fitness evaluation agrees with the sequential harness."""

import pytest

from repro.gp.engine import GPEngine, GPParams
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.parallel import ParallelEvaluator


class TestParallelEvaluator:
    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            ParallelEvaluator("hyperblock", processes=0)

    def test_matches_sequential(self):
        case = case_study("hyperblock")
        sequential = EvaluationHarness(case)
        baseline = case.baseline_tree()
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            parallel_value = parallel(baseline, "codrle4")
        sequential_value = sequential.speedup(baseline, "codrle4")
        assert parallel_value == pytest.approx(sequential_value)

    def test_batch_memoized(self):
        case = case_study("hyperblock")
        baseline = case.baseline_tree()
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            first = parallel.evaluate_batch(
                [(baseline, "codrle4"), (baseline, "codrle4")]
            )
            dispatched = parallel.jobs_dispatched
            second = parallel.evaluate_batch([(baseline, "codrle4")])
            assert parallel.jobs_dispatched == dispatched  # cached
        assert first == [first[0], first[0]]
        assert second == first[:1]

    def test_drives_gp_engine(self):
        case = case_study("hyperblock")
        with ParallelEvaluator("hyperblock", processes=2) as parallel:
            engine = GPEngine(
                pset=case.pset,
                evaluator=parallel,
                benchmarks=("codrle4",),
                params=GPParams(population_size=6, generations=2, seed=3),
                seed_trees=(case.baseline_tree(),),
            )
            result = engine.run()
        assert result.best.fitness >= 1.0 - 1e-9
