"""The scheduling extension case study (Section 2's example, evolved)."""

import pytest

from repro.frontend import compile_source
from repro.gp.engine import GPParams
from repro.machine.descr import SCHEDULING_MACHINE
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.priority import PriorityFunction
from repro.metaopt.scheduling import (
    SCHEDULE_BOOL_FEATURES,
    SCHEDULE_PSET,
    SCHEDULE_REAL_FEATURES,
    dag_environments,
    make_schedule_priority,
)
from repro.metaopt.specialize import (
    build_specialize_engine,
    finalize_specialization,
)
from repro.passes.schedule import build_dag


def sample_dag():
    source = """
    int a[32];
    void main() {
      int x = a[0] * 3;
      int y = a[1] * 5;
      int z = x + y;
      a[2] = z;
      out(z);
    }
    """
    module = compile_source(source)
    return build_dag(module.functions["main"].entry, SCHEDULING_MACHINE)


class TestFeatures:
    def test_environments_cover_declared_features(self):
        dag = sample_dag()
        for env in dag_environments(dag):
            for name in SCHEDULE_REAL_FEATURES:
                assert name in env
            for name in SCHEDULE_BOOL_FEATURES:
                assert name in env

    def test_lw_depth_matches_dag(self):
        dag = sample_dag()
        environments = dag_environments(dag)
        depths = dag.critical_path()
        for index, env in enumerate(environments):
            assert env["lw_depth"] == float(depths[index])

    def test_critical_path_has_zero_slack(self):
        dag = sample_dag()
        environments = dag_environments(dag)
        criticals = [env for env in environments if env["critical"]]
        assert criticals
        assert all(env["slack"] == 0.0 for env in criticals)

    def test_asap_nondecreasing_along_edges(self):
        dag = sample_dag()
        environments = dag_environments(dag)
        for index, succs in enumerate(dag.succs):
            for succ, latency in succs:
                assert environments[succ]["asap"] \
                    >= environments[index]["asap"] + latency - 1e-9


class TestAdapter:
    def test_adapter_matches_default_priority(self):
        dag = sample_dag()
        hook = make_schedule_priority(lambda env: env["lw_depth"])
        depths = dag.critical_path()
        for index in range(len(dag.instrs)):
            assert hook(index, dag) == float(depths[index])

    def test_adapter_caches_per_dag(self):
        calls = []

        def spying(env):
            calls.append(1)
            return 1.0

        dag = sample_dag()
        hook = make_schedule_priority(spying)
        for index in range(len(dag.instrs)):
            hook(index, dag)
            hook(index, dag)
        # Feature extraction happened once per instruction (cached),
        # priority evaluation twice.
        assert len(calls) == 2 * len(dag.instrs)

    def test_adapter_contains_failures(self):
        def broken(env):
            raise ValueError("nope")

        dag = sample_dag()
        hook = make_schedule_priority(broken)
        assert hook(0, dag) == 0.0


class TestCase:
    def test_case_config(self):
        case = case_study("scheduling")
        assert case.machine is SCHEDULING_MACHINE
        assert case.hook == "schedule_priority"
        assert case.pset is SCHEDULE_PSET

    def test_baseline_scores_one(self):
        harness = EvaluationHarness(case_study("scheduling"))
        assert harness.speedup(harness.case.baseline_tree(),
                               "mpeg2dec") == pytest.approx(1.0)

    def test_bad_priorities_hurt(self):
        harness = EvaluationHarness(case_study("scheduling"))
        anti = PriorityFunction.from_text("(sub 0.0 lw_depth)",
                                          SCHEDULE_PSET)
        assert harness.speedup(anti, "093.nasa7") < 1.0

    def test_specialization_runs(self):
        harness = EvaluationHarness(case_study("scheduling"))
        engine = build_specialize_engine(
            harness.case, "mpeg2dec",
            GPParams(population_size=8, generations=2, seed=4),
            harness,
        )
        result = finalize_specialization(harness, "mpeg2dec", engine.run())
        assert result.train_speedup >= 1.0 - 1e-9
