"""Evaluation harness: case-study configuration, caching, speedups."""

import pytest

from repro.machine.descr import (
    DEFAULT_EPIC,
    ITANIUM_MACHINE,
    REGALLOC_MACHINE,
)
from repro.metaopt.harness import EvaluationHarness, case_study
from repro.metaopt.settings import EvalSettings
from repro.metaopt.priority import PriorityFunction


class TestCaseStudy:
    def test_hyperblock_config(self):
        case = case_study("hyperblock")
        assert case.machine is DEFAULT_EPIC
        assert case.options.prefetch is False
        assert case.hook == "hyperblock_priority"
        assert case.pset.result_type.value == "real"

    def test_regalloc_config(self):
        case = case_study("regalloc")
        assert case.machine is REGALLOC_MACHINE
        assert case.hook == "spill_priority"

    def test_prefetch_config(self):
        case = case_study("prefetch")
        assert case.machine is ITANIUM_MACHINE
        assert case.options.prefetch is True
        assert case.hook == "prefetch_priority"

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            case_study("loop-unrolling")

    def test_machine_override(self):
        case = case_study("hyperblock", machine=ITANIUM_MACHINE)
        assert case.machine is ITANIUM_MACHINE

    def test_options_for_installs_hook(self):
        case = case_study("hyperblock")
        marker = lambda env: 42.0
        options = case.options_for(marker)
        assert options.hyperblock_priority is marker
        # other hooks untouched
        assert options.prefetch_priority is case.options.prefetch_priority


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        return EvaluationHarness(case_study("hyperblock"))

    def test_baseline_speedup_is_one(self, harness):
        case = harness.case
        speedup = harness.speedup(case.baseline_tree(), "rawcaudio")
        assert speedup == pytest.approx(1.0)

    def test_prepared_cached(self, harness):
        first = harness.prepared("rawcaudio")
        second = harness.prepared("rawcaudio")
        assert first is second

    def test_simulation_memoized(self, harness):
        tree = harness.case.baseline_tree()
        before = harness.sim_count
        harness.simulate(tree, "rawcaudio")
        harness.simulate(tree, "rawcaudio")
        after = harness.sim_count
        assert after - before <= 1

    def test_structurally_equal_trees_share_memo(self, harness):
        before = harness.sim_count
        harness.simulate(harness.case.baseline_tree(), "rawcaudio")
        harness.simulate(harness.case.baseline_tree(), "rawcaudio")
        assert harness.sim_count - before <= 1

    def test_datasets_memoized_separately(self, harness):
        tree = harness.case.baseline_tree()
        train = harness.simulate(tree, "rawcaudio", "train")
        novel = harness.simulate(tree, "rawcaudio", "novel")
        assert train.cycles != novel.cycles

    def test_native_callables_accepted(self, harness):
        result = harness.simulate(lambda env: 1.0, "rawcaudio")
        assert result.cycles > 0

    def test_wrapped_priority_accepted(self, harness):
        fn = PriorityFunction(harness.case.baseline_tree())
        result = harness.simulate(fn, "rawcaudio")
        assert result.cycles \
            == harness.baseline_result("rawcaudio").cycles

    def test_evaluator_interface(self, harness):
        evaluate = harness.evaluator("train")
        speedup = evaluate(harness.case.baseline_tree(), "rawcaudio")
        assert speedup == pytest.approx(1.0)

    def test_outputs_match_reference_interpreter(self, harness):
        from repro.frontend import compile_source
        from repro.ir.interp import Interpreter
        from repro.suite import get

        bench = get("rawcaudio")
        module = compile_source(bench.source, bench.name)
        interp = Interpreter(module)
        for name, values in bench.inputs("train").items():
            interp.set_global(name, values)
        ref = interp.run()
        result = harness.baseline_result("rawcaudio")
        assert result.output_signature() == ref.output_signature()


class TestNoisyHarness:
    def test_noise_changes_measurements_reproducibly(self):
        case = case_study("prefetch")
        noisy1 = EvaluationHarness(case, EvalSettings(noise_stddev=0.02))
        noisy2 = EvaluationHarness(case, EvalSettings(noise_stddev=0.02))
        tree = case.baseline_tree()
        first = noisy1.simulate(tree, "178.galgel").cycles
        second = noisy2.simulate(tree, "178.galgel").cycles
        assert first == second  # derived seed => reproducible

    def test_noise_distinct_across_candidates(self):
        case = case_study("prefetch")
        harness = EvaluationHarness(case, EvalSettings(noise_stddev=0.02))
        from repro.passes.prefetch import always_prefetch, never_prefetch

        a = harness.simulate(never_prefetch, "178.galgel").cycles
        b = harness.simulate(always_prefetch, "178.galgel").cycles
        assert a != b
