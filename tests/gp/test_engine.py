"""GP engine tests: Table 2 defaults, evolution progress, elitism,
memoization, seeding."""

import pytest

from repro.gp.dss import DSSState
from repro.gp.engine import GPEngine, GPParams
from repro.gp.generate import PrimitiveSet
from repro.gp.parse import parse

PSET = PrimitiveSet(real_features=("x", "y"))

GRID = [(float(i), float(j)) for i in range(4) for j in range(4)]


def regression_fitness(tree, benchmark):
    """Toy symbolic-regression fitness: approximate 2x + y."""
    error = 0.0
    for x, y in GRID:
        error += abs(tree.evaluate({"x": x, "y": y}) - (2 * x + y))
    return 1.0 / (1.0 + error)


def small_params(**overrides):
    defaults = dict(population_size=30, generations=10, seed=11)
    defaults.update(overrides)
    return GPParams(**defaults)


class TestParams:
    def test_paper_defaults(self):
        """Table 2's settings are the library defaults."""
        params = GPParams()
        assert params.population_size == 400
        assert params.generations == 50
        assert params.replacement_fraction == 0.22
        assert params.mutation_rate == 0.05
        assert params.tournament_size == 7
        assert params.elitism is True

    def test_validation(self):
        with pytest.raises(ValueError):
            GPParams(population_size=1)
        with pytest.raises(ValueError):
            GPParams(replacement_fraction=0.0)
        with pytest.raises(ValueError):
            GPParams(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GPParams(tournament_size=0)


class TestEngine:
    def test_requires_benchmarks(self):
        with pytest.raises(ValueError):
            GPEngine(PSET, regression_fitness, benchmarks=())

    def test_initial_population_includes_seed(self):
        seed_tree = parse("(add x y)")
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(), seed_trees=(seed_tree,))
        population = engine.initial_population()
        assert len(population) == 30
        assert population[0].tree == seed_tree
        assert population[0].origin == "seed"
        assert all(ind.origin == "random" for ind in population[1:])

    def test_too_many_seeds_rejected(self):
        seeds = tuple(parse(f"{i}.0") for i in range(31))
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(), seed_trees=seeds)
        with pytest.raises(ValueError):
            engine.initial_population()

    def test_run_produces_history(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params())
        result = engine.run()
        assert len(result.history) == 10
        assert result.best.fitness is not None
        assert len(result.fitness_curve()) == 10

    def test_elitism_makes_best_fitness_monotone(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(seed=7))
        result = engine.run()
        curve = result.fitness_curve()
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_evolution_improves_over_initial(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=20, seed=5))
        result = engine.run()
        curve = result.fitness_curve()
        assert curve[-1] > curve[0]

    def test_seeded_baseline_never_lost(self):
        """With elitism, the final champion is at least as fit as the
        seed (the paper's guarantee that evolved heuristics match or
        beat the stock one on the training input)."""
        seed_tree = parse("(add (add x x) y)")  # the exact solution
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(), seed_trees=(seed_tree,))
        result = engine.run()
        assert result.best.fitness >= regression_fitness(seed_tree, "toy") \
            - 1e-12

    def test_memoization_avoids_reevaluation(self):
        calls = []

        def counting_fitness(tree, benchmark):
            calls.append(tree.structural_key())
            return regression_fitness(tree, benchmark)

        engine = GPEngine(PSET, counting_fitness, ("toy",),
                          small_params())
        engine.run()
        assert len(calls) == len(set(calls))
        assert engine.evaluations == len(calls)

    def test_deterministic_under_seed(self):
        results = []
        for _ in range(2):
            engine = GPEngine(PSET, regression_fitness, ("toy",),
                              small_params(seed=99))
            results.append(engine.run().fitness_curve())
        assert results[0] == results[1]

    def test_baseline_rank_reported_when_seeded(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(), seed_trees=(parse("(add x y)"),))
        result = engine.run()
        assert result.history[0].baseline_rank is not None

    def test_baseline_rank_none_without_seed(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params())
        result = engine.run()
        assert result.history[0].baseline_rank is None

    def test_on_generation_callback(self):
        seen = []
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=4),
                          on_generation=seen.append)
        engine.run()
        assert [s.generation for s in seen] == [0, 1, 2, 3]


class TestEngineWithDSS:
    def test_dss_subsets_drive_evaluation(self):
        benchmarks = ("b0", "b1", "b2", "b3")

        def per_bench_fitness(tree, benchmark):
            # b3 is 'hard': nothing scores well on it.
            base = regression_fitness(tree, benchmark)
            return base * (0.1 if benchmark == "b3" else 1.0)

        import random as _random

        dss = DSSState(benchmarks, subset_size=2, rng=_random.Random(1))
        engine = GPEngine(PSET, per_bench_fitness, benchmarks,
                          small_params(generations=8), dss=dss)
        result = engine.run()
        subsets = [set(stats.subset) for stats in result.history]
        assert all(len(s) == 2 for s in subsets)
        # multiple distinct subsets were visited
        assert len({frozenset(s) for s in subsets}) > 1

    def test_without_dss_full_set_used(self):
        benchmarks = ("b0", "b1")
        engine = GPEngine(PSET, regression_fitness, benchmarks,
                          small_params(generations=3))
        result = engine.run()
        assert all(stats.subset == benchmarks for stats in result.history)


class TestDiversityStats:
    def test_unique_structures_bounded_by_population(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=4))
        result = engine.run()
        for stats in result.history:
            assert 1 <= stats.unique_structures <= 30
            assert stats.mean_size >= 1.0

    def test_inbreeding_visible_over_time(self):
        """Replacement by crossover of tournament winners reduces (or
        at least never explodes) structural diversity — the paper's
        inbreeding observation."""
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=12, seed=2))
        result = engine.run()
        first = result.history[0].unique_structures
        last = result.history[-1].unique_structures
        assert last <= first + 5


class _BatchingFitness:
    """Callable evaluator that also exposes ``evaluate_batch`` and
    records how work arrives, for asserting the engine's generation
    batching."""

    def __init__(self):
        self.single_calls = 0
        self.batch_sizes = []

    def __call__(self, tree, benchmark):
        self.single_calls += 1
        return regression_fitness(tree, benchmark)

    def evaluate_batch(self, jobs):
        jobs = list(jobs)
        self.batch_sizes.append(len(jobs))
        return [regression_fitness(tree, benchmark)
                for tree, benchmark in jobs]


class TestGenerationBatching:
    def test_uncached_pairs_arrive_in_one_batch(self):
        evaluator = _BatchingFitness()
        engine = GPEngine(PSET, evaluator, ("toy",),
                          small_params(generations=4))
        engine.run()
        # every fitness came through evaluate_batch, never pairwise
        assert evaluator.single_calls == 0
        assert evaluator.batch_sizes
        # generation 0 ships the whole population in one call
        assert evaluator.batch_sizes[0] <= 30
        assert evaluator.batch_sizes[0] >= 2
        # later generations only ship new (uncached) individuals
        assert all(size < 30 for size in evaluator.batch_sizes[1:])

    def test_batching_identical_to_pairwise(self):
        batched = GPEngine(PSET, _BatchingFitness(), ("toy",),
                           small_params(generations=6)).run()
        pairwise = GPEngine(PSET, regression_fitness, ("toy",),
                            small_params(generations=6)).run()
        assert batched.fitness_curve() == pairwise.fitness_curve()
        assert batched.best.tree == pairwise.best.tree
        assert batched.evaluations == pairwise.evaluations

    def test_batch_deduplicates_structural_twins(self):
        evaluator = _BatchingFitness()
        engine = GPEngine(
            PSET, evaluator, ("toy",),
            small_params(population_size=10, generations=1),
            seed_trees=(parse("(add x y)"),
                        parse("(add x y)")),
        )
        engine.run()
        # two structurally identical seeds -> one evaluation
        assert evaluator.batch_sizes[0] == 9


class TestSteppedCheckpointing:
    def test_step_matches_run(self):
        stepped = GPEngine(PSET, regression_fitness, ("toy",),
                           small_params(generations=6))
        while not stepped.done:
            stepped.step()
        monolithic = GPEngine(PSET, regression_fitness, ("toy",),
                              small_params(generations=6)).run()
        assert stepped.result().fitness_curve() == \
            monolithic.fitness_curve()
        assert stepped.result().best.tree == monolithic.best.tree

    def test_step_after_done_rejected(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=2))
        engine.run()
        with pytest.raises(RuntimeError):
            engine.step()

    @pytest.mark.parametrize("stop_at", [1, 4, 9])
    def test_state_round_trip_continues_identically(self, stop_at):
        reference = GPEngine(PSET, regression_fitness, ("toy",),
                             small_params()).run()

        first = GPEngine(PSET, regression_fitness, ("toy",),
                         small_params())
        for _ in range(stop_at):
            first.step()
        state = first.state_dict()

        second = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params())
        second.restore_state(state)
        resumed = second.run()
        assert resumed.fitness_curve() == reference.fitness_curve()
        assert resumed.best.tree == reference.best.tree
        assert resumed.evaluations == reference.evaluations

    def test_state_round_trip_with_dss(self):
        import random as _random

        benchmarks = ("b0", "b1", "b2", "b3")

        def build():
            dss = DSSState(benchmarks, subset_size=2,
                           rng=_random.Random(1))
            return GPEngine(PSET, regression_fitness, benchmarks,
                            small_params(generations=8), dss=dss)

        reference = build().run()
        first = build()
        for _ in range(3):
            first.step()
        second = build()
        second.restore_state(first.state_dict())
        resumed = second.run()
        assert [s.subset for s in resumed.history] == \
            [s.subset for s in reference.history]
        assert resumed.fitness_curve() == reference.fitness_curve()

    def test_state_is_picklable_and_detached(self):
        import pickle

        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params(generations=4))
        engine.step()
        state = pickle.loads(pickle.dumps(engine.state_dict()))
        engine.step()  # mutating the engine must not affect the snapshot
        fresh = GPEngine(PSET, regression_fitness, ("toy",),
                         small_params(generations=4))
        fresh.restore_state(state)
        assert fresh.generation == 1
        assert len(fresh.history) == 1

    def test_unsupported_state_version_rejected(self):
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params())
        with pytest.raises(ValueError):
            engine.restore_state({"version": 99})


class TestBaselineRankFast:
    def test_matches_quadratic_reference(self):
        import random

        from repro.gp.select import Individual

        rng = random.Random(5)
        trees = [parse("x"),
                 parse("y")]
        engine = GPEngine(PSET, regression_fitness, ("toy",),
                          small_params())
        for trial in range(200):
            population = []
            for index in range(rng.randrange(2, 12)):
                population.append(Individual(
                    tree=rng.choice(trees),
                    fitness=rng.choice([None, 0.0, 0.25, 0.5, 0.5, 1.0]),
                    origin=rng.choice(["seed", "random", "crossover"]),
                ))

            def reference(pop):
                seeds = [ind for ind in pop if ind.origin == "seed"]
                if not seeds:
                    return None
                ranked = sorted(
                    pop,
                    key=lambda ind: (ind.fitness
                                     if ind.fitness is not None else -1.0),
                    reverse=True,
                )
                return min(ranked.index(seed) for seed in seeds) + 1

            assert engine._baseline_rank(population) == reference(population)
