"""Crossover (depth-fair, typed) and mutation operator tests."""

import random

from hypothesis import given, settings, strategies as st

from repro.gp.crossover import (
    crossover,
    depth_fair_pick,
    nodes_by_depth,
    replace_subtree,
)
from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.mutate import (
    mutate,
    point_mutation,
    shrink_mutation,
    subtree_mutation,
)
from repro.gp.nodes import Add, Mul, RArg, RConst
from repro.gp.parse import parse
from repro.gp.types import BOOL, REAL

PSET = PrimitiveSet(real_features=("a", "b"), bool_features=("h",))
ENV = {"a": 1.0, "b": -2.5, "h": True}


def check_well_formed(tree):
    """Every node's children match its declared argument types, and the
    tree evaluates without raising."""
    for node in tree.walk():
        assert len(node.children) == len(node.arg_types)
        for child, want in zip(node.children, node.arg_types):
            assert child.result_type is want
    assert isinstance(tree.evaluate(ENV), (float, bool))


class TestDepthFairPick:
    def test_all_levels_reachable(self):
        tree = parse("(add (mul a (add b 1.0)) 2.0)")
        rng = random.Random(0)
        depths_seen = set()
        for _ in range(300):
            node, parent, slot = depth_fair_pick(tree, rng)
            for candidate, cparent, cslot, depth in tree.walk_with_context():
                if candidate is node:
                    depths_seen.add(depth)
        assert depths_seen == {0, 1, 2, 3}

    def test_type_filter(self):
        tree = parse("(tern (lt a b) a b)")
        rng = random.Random(1)
        for _ in range(50):
            picked = depth_fair_pick(tree, rng, BOOL)
            assert picked is not None
            assert picked[0].result_type is BOOL

    def test_type_filter_no_match(self):
        tree = parse("(add a b)")
        assert depth_fair_pick(tree, random.Random(2), BOOL) is None

    def test_nodes_by_depth_counts(self):
        tree = parse("(add (mul a b) 1.0)")
        levels = nodes_by_depth(tree)
        assert len(levels[0]) == 1
        assert len(levels[1]) == 2
        assert len(levels[2]) == 2


class TestReplaceSubtree:
    def test_replace_root(self):
        tree = parse("(add a b)")
        new = replace_subtree(tree, None, -1, RConst(1.0))
        assert new == RConst(1.0)

    def test_replace_child(self):
        tree = parse("(add a b)")
        new = replace_subtree(tree, tree, 0, RConst(5.0))
        assert new.evaluate({"b": 1.0}) == 6.0

    def test_type_mismatch_rejected(self):
        import pytest

        tree = parse("(add a b)")
        with pytest.raises(TypeError):
            replace_subtree(tree, tree, 0, parse("true"))


class TestCrossover:
    def test_offspring_well_formed(self):
        rng = random.Random(3)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(60):
            mother = generator.grow(5)
            father = generator.grow(5)
            left, right = crossover(mother, father, rng)
            check_well_formed(left)
            check_well_formed(right)

    def test_parents_unchanged(self):
        rng = random.Random(4)
        mother = parse("(add (mul a b) 1.0)")
        father = parse("(sub a (div b 2.0))")
        mother_key = mother.structural_key()
        father_key = father.structural_key()
        crossover(mother, father, rng)
        assert mother.structural_key() == mother_key
        assert father.structural_key() == father_key

    def test_depth_guard(self):
        rng = random.Random(5)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(40):
            mother = generator.full(6)
            father = generator.full(6)
            left, right = crossover(mother, father, rng, max_depth=7)
            assert left.depth() <= 7
            assert right.depth() <= 7

    def test_material_is_exchanged(self):
        rng = random.Random(6)
        mother = parse("(add a a)")
        father = parse("(mul b b)")
        changed = False
        for _ in range(50):
            left, _right = crossover(mother, father, rng)
            if left != mother:
                changed = True
                break
        assert changed


class TestMutation:
    def test_subtree_mutation_well_formed(self):
        rng = random.Random(7)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(50):
            tree = generator.grow(5)
            check_well_formed(subtree_mutation(tree, generator, rng))

    def test_point_mutation_well_formed(self):
        rng = random.Random(8)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(50):
            tree = generator.grow(5)
            mutant = point_mutation(tree, generator, rng)
            check_well_formed(mutant)

    def test_point_mutation_perturbs_constants(self):
        rng = random.Random(9)
        generator = TreeGenerator(PSET, rng=rng)
        tree = RConst(1.0)
        values = {point_mutation(tree, generator, rng).value
                  for _ in range(20)}
        assert values != {1.0}

    def test_shrink_mutation_never_grows(self):
        rng = random.Random(10)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(50):
            tree = generator.grow(6)
            mutant = shrink_mutation(tree, rng)
            check_well_formed(mutant)
            assert mutant.size() <= tree.size()

    def test_mutate_dispatch_well_formed(self):
        rng = random.Random(11)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(80):
            tree = generator.grow(5)
            check_well_formed(mutate(tree, generator, rng))

    def test_mutate_respects_depth_cap(self):
        rng = random.Random(12)
        generator = TreeGenerator(PSET, rng=rng)
        for _ in range(40):
            tree = generator.full(6)
            assert mutate(tree, generator, rng, max_depth=8).depth() <= 8


@st.composite
def tree_pairs(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    generator = TreeGenerator(PSET, rng=rng)
    return generator.grow(5), generator.grow(5), seed


class TestClosureProperty:
    @settings(max_examples=60, deadline=None)
    @given(tree_pairs())
    def test_crossover_closure(self, pair):
        mother, father, seed = pair
        rng = random.Random(seed + 1)
        left, right = crossover(mother, father, rng)
        check_well_formed(left)
        check_well_formed(right)

    @settings(max_examples=60, deadline=None)
    @given(tree_pairs())
    def test_mutation_closure(self, pair):
        tree, _other, seed = pair
        rng = random.Random(seed + 2)
        generator = TreeGenerator(PSET, rng=rng)
        check_well_formed(mutate(tree, generator, rng))
