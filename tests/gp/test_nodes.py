"""Unit tests for GP expression nodes (Table 1 primitives)."""

import math

import pytest

from repro.gp.nodes import (
    Add,
    And,
    BArg,
    BConst,
    Cmul,
    Div,
    Eq,
    Gt,
    Lt,
    Mul,
    Not,
    Or,
    RArg,
    RConst,
    Sqrt,
    Sub,
    Tern,
)
from repro.gp.types import BOOL, REAL


class TestConstruction:
    def test_add_requires_two_children(self):
        with pytest.raises(ValueError):
            Add(RConst(1.0))

    def test_add_rejects_bool_child(self):
        with pytest.raises(TypeError):
            Add(RConst(1.0), BConst(True))

    def test_tern_signature(self):
        node = Tern(BConst(True), RConst(1.0), RConst(2.0))
        assert node.result_type is REAL
        assert node.arg_types == (BOOL, REAL, REAL)

    def test_and_rejects_real_child(self):
        with pytest.raises(TypeError):
            And(BConst(True), RConst(1.0))

    def test_lt_takes_reals_returns_bool(self):
        node = Lt(RConst(1.0), RConst(2.0))
        assert node.result_type is BOOL


class TestEvaluation:
    def test_add(self):
        assert Add(RConst(2.0), RConst(3.0)).evaluate({}) == 5.0

    def test_sub(self):
        assert Sub(RConst(2.0), RConst(3.0)).evaluate({}) == -1.0

    def test_mul(self):
        assert Mul(RConst(2.0), RConst(3.0)).evaluate({}) == 6.0

    def test_div(self):
        assert Div(RConst(6.0), RConst(3.0)).evaluate({}) == 2.0

    def test_protected_div_by_zero_returns_one(self):
        assert Div(RConst(5.0), RConst(0.0)).evaluate({}) == 1.0

    def test_protected_sqrt_of_negative(self):
        assert Sqrt(RConst(-4.0)).evaluate({}) == 2.0

    def test_sqrt(self):
        assert Sqrt(RConst(9.0)).evaluate({}) == 3.0

    def test_tern_true_branch(self):
        assert Tern(BConst(True), RConst(1.0), RConst(2.0)).evaluate({}) == 1.0

    def test_tern_false_branch(self):
        assert Tern(BConst(False), RConst(1.0), RConst(2.0)).evaluate({}) == 2.0

    def test_cmul_true(self):
        assert Cmul(BConst(True), RConst(3.0), RConst(4.0)).evaluate({}) == 12.0

    def test_cmul_false_returns_second(self):
        assert Cmul(BConst(False), RConst(3.0), RConst(4.0)).evaluate({}) == 4.0

    def test_and_or_not(self):
        assert And(BConst(True), BConst(False)).evaluate({}) is False
        assert Or(BConst(True), BConst(False)).evaluate({}) is True
        assert Not(BConst(False)).evaluate({}) is True

    def test_comparisons(self):
        assert Lt(RConst(1.0), RConst(2.0)).evaluate({}) is True
        assert Gt(RConst(1.0), RConst(2.0)).evaluate({}) is False
        assert Eq(RConst(2.0), RConst(2.0)).evaluate({}) is True

    def test_rarg_reads_environment(self):
        assert RArg("x").evaluate({"x": 7.5}) == 7.5

    def test_rarg_coerces_bool_to_float(self):
        assert RArg("x").evaluate({"x": True}) == 1.0

    def test_barg_reads_environment(self):
        assert BArg("flag").evaluate({"flag": True}) is True

    def test_rarg_missing_feature_raises(self):
        with pytest.raises(KeyError):
            RArg("missing").evaluate({})

    def test_overflow_is_clamped(self):
        tree = RConst(1e200)
        node = Mul(tree, RConst(1e200))
        value = node.evaluate({})
        assert math.isfinite(value)

    def test_nan_maps_to_zero(self):
        # inf - inf would be NaN; clamping maps it to 0.
        big = Mul(RConst(1e200), RConst(1e200))
        node = Sub(big, big)
        assert node.evaluate({}) == 0.0


class TestStructure:
    def _tree(self):
        return Add(Mul(RArg("a"), RConst(2.0)), RArg("b"))

    def test_size(self):
        assert self._tree().size() == 5

    def test_depth(self):
        assert self._tree().depth() == 3
        assert RConst(1.0).depth() == 1

    def test_walk_visits_every_node(self):
        assert sum(1 for _ in self._tree().walk()) == 5

    def test_walk_with_context_roots_have_no_parent(self):
        entries = list(self._tree().walk_with_context())
        roots = [e for e in entries if e[1] is None]
        assert len(roots) == 1
        assert sum(1 for _ in entries) == 5

    def test_copy_is_deep(self):
        tree = self._tree()
        clone = tree.copy()
        assert clone == tree
        clone.children[1] = RConst(9.0)
        assert clone != tree

    def test_equality_is_structural(self):
        assert self._tree() == self._tree()
        assert self._tree() != Add(RArg("a"), RArg("b"))

    def test_constants_compare_by_value(self):
        assert RConst(1.0) == RConst(1.0)
        assert RConst(1.0) != RConst(2.0)
        assert BConst(True) != BConst(False)

    def test_args_compare_by_name(self):
        assert RArg("x") == RArg("x")
        assert RArg("x") != RArg("y")
        assert BArg("x") != RArg("x")

    def test_hashable(self):
        seen = {self._tree(), self._tree(), RConst(1.0)}
        assert len(seen) == 2
