"""Random tree generation: ramped half-and-half, closure, typing."""

import random

import pytest

from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.nodes import BArg, BConst, RArg, RConst
from repro.gp.types import BOOL, REAL

PSET = PrimitiveSet(real_features=("a", "b"), bool_features=("h",))
ENV = {"a": 1.0, "b": 2.0, "h": False}


def make_generator(seed=0, pset=PSET):
    return TreeGenerator(pset, rng=random.Random(seed))


class TestPrimitiveSet:
    def test_overlapping_features_rejected(self):
        with pytest.raises(ValueError):
            PrimitiveSet(real_features=("x",), bool_features=("x",))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            PrimitiveSet(real_features=("x",), functions=("nosuch",))

    def test_feature_names(self):
        assert PSET.feature_names == ("a", "b", "h")

    def test_bool_feature_set(self):
        assert PSET.bool_feature_set() == frozenset({"h"})


class TestTerminals:
    def test_real_terminal_types(self):
        generator = make_generator()
        for _ in range(50):
            term = generator.random_terminal(REAL)
            assert isinstance(term, (RArg, RConst))

    def test_bool_terminal_types(self):
        generator = make_generator()
        for _ in range(50):
            term = generator.random_terminal(BOOL)
            assert isinstance(term, (BArg, BConst))

    def test_constants_respect_range(self):
        pset = PrimitiveSet(real_features=("x",), const_range=(5.0, 6.0))
        generator = make_generator(pset=pset)
        constants = [
            t.value for t in (generator.random_terminal(REAL)
                              for _ in range(200))
            if isinstance(t, RConst)
        ]
        assert constants
        assert all(5.0 <= c <= 6.0 for c in constants)

    def test_no_bool_features_still_works(self):
        pset = PrimitiveSet(real_features=("x",))
        generator = make_generator(pset=pset)
        term = generator.random_terminal(BOOL)
        assert isinstance(term, BConst)


class TestGrowFull:
    def test_full_reaches_exact_depth(self):
        generator = make_generator(3)
        for depth in range(2, 7):
            tree = generator.full(depth)
            assert tree.depth() == depth

    def test_grow_respects_depth_limit(self):
        generator = make_generator(4)
        for _ in range(30):
            tree = generator.grow(5)
            assert tree.depth() <= 5

    def test_depth_one_is_terminal(self):
        generator = make_generator(5)
        assert generator.grow(1).size() == 1
        assert generator.full(1).size() == 1

    def test_requested_type_is_respected(self):
        generator = make_generator(6)
        assert generator.grow(4, REAL).result_type is REAL
        assert generator.grow(4, BOOL).result_type is BOOL

    def test_generated_trees_evaluate(self):
        generator = make_generator(7)
        for _ in range(50):
            tree = generator.grow(6)
            value = tree.evaluate(ENV)
            assert isinstance(value, (float, bool))


class TestRampedHalfAndHalf:
    def test_count(self):
        trees = make_generator(8).ramped_half_and_half(37)
        assert len(trees) == 37

    def test_depths_within_ramp(self):
        trees = make_generator(9).ramped_half_and_half(
            40, min_depth=2, max_depth=5
        )
        assert all(1 <= t.depth() <= 5 for t in trees)
        # ramp produces size variety
        assert len({t.depth() for t in trees}) >= 3

    def test_bad_ramp_rejected(self):
        with pytest.raises(ValueError):
            make_generator().ramped_half_and_half(10, min_depth=4, max_depth=2)

    def test_deterministic_under_seed(self):
        first = make_generator(42).ramped_half_and_half(10)
        second = make_generator(42).ramped_half_and_half(10)
        assert first == second
