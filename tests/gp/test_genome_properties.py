"""Property tests: the flags-genome operators are closed over the
flag space.

The FOGA-style flags campaign rides the same engine as the tree
campaigns, so its operators must satisfy the same closure contract:
crossover and mutation can only ever produce genomes whose every gene
is a legal choice from :data:`repro.gp.genome.FLAG_GENES`, and the
textual checkpoint format round-trips every reachable genome.  This is
the flags counterpart of ``test_operator_properties.py``.

All randomness is seeded through Hypothesis-drawn integers and
``derandomize=True``, so the suite is deterministic and tier-1 safe.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gp.genome import (
    FlagsGenome,
    FlagsGenomeOps,
    FlagsSpace,
    TreeGenomeOps,
    expression_text,
    genome_ops_for,
    is_flags_text,
)
from repro.gp.parse import ParseError
from repro.metaopt.psets import FLAGS_SPACE, PSETS

DETERMINISTIC = settings(max_examples=40, deadline=None, derandomize=True)

OPS = FlagsGenomeOps(FLAGS_SPACE)


def assert_valid(genome):
    """The closure contract for one genome: every gene legal, Node
    surface consistent, text round trip lossless."""
    assert isinstance(genome, FlagsGenome)
    assert len(genome.values) == len(FLAGS_SPACE.genes)
    for value, (name, choices) in zip(genome.values, FLAGS_SPACE.genes):
        assert value in choices, f"gene {name!r} escaped its choices"
    assert genome.size() == len(FLAGS_SPACE.genes)
    assert genome.depth() == 1
    assert genome.children == ()

    reparsed = FlagsGenome.from_text(genome.text(), FLAGS_SPACE)
    assert reparsed.structural_key() == genome.structural_key(), \
        "text round trip changed the genome"
    assert reparsed == genome
    assert hash(reparsed) == hash(genome)


@st.composite
def genomes(draw):
    """A random genome drawn gene-by-gene (uniform over the space)."""
    values = tuple(draw(st.sampled_from(choices))
                   for _name, choices in FLAGS_SPACE.genes)
    return FlagsGenome(values, FLAGS_SPACE)


class TestCrossoverClosure:
    @DETERMINISTIC
    @given(genomes(), genomes(), st.integers(0, 10_000))
    def test_offspring_valid(self, mother, father, seed):
        left, right = OPS.crossover(mother, father, random.Random(seed),
                                    max_depth=10)
        assert_valid(left)
        assert_valid(right)

    @DETERMINISTIC
    @given(genomes(), genomes(), st.integers(0, 10_000))
    def test_children_are_gene_exchanges(self, mother, father, seed):
        """Uniform crossover only exchanges genes: at every position
        the two children jointly hold exactly the parents' values."""
        left, right = OPS.crossover(mother, father, random.Random(seed),
                                    max_depth=10)
        for index in range(len(mother.values)):
            parents = {mother.values[index], father.values[index]}
            assert left.values[index] in parents
            assert right.values[index] in parents
            assert ({left.values[index], right.values[index]}
                    == parents)

    @DETERMINISTIC
    @given(genomes(), genomes(), st.integers(0, 10_000))
    def test_parents_survive_crossover_intact(self, mother, father, seed):
        mother_values, father_values = mother.values, father.values
        OPS.crossover(mother, father, random.Random(seed), max_depth=10)
        assert mother.values == mother_values
        assert father.values == father_values


class TestMutationClosure:
    @DETERMINISTIC
    @given(genomes(), st.integers(0, 10_000))
    def test_mutant_valid_and_one_gene_changed(self, genome, seed):
        mutant = OPS.mutate(genome, None, random.Random(seed),
                            max_depth=10)
        assert_valid(mutant)
        changed = [index for index in range(len(genome.values))
                   if mutant.values[index] != genome.values[index]]
        assert len(changed) == 1, \
            "single-gene mutation must change exactly one gene"

    @DETERMINISTIC
    @given(genomes(), st.integers(0, 10_000))
    def test_repeated_mutation_stays_closed(self, genome, seed):
        rng = random.Random(seed)
        for _ in range(5):
            genome = OPS.mutate(genome, None, rng, max_depth=10)
        assert_valid(genome)


class TestGenerator:
    @DETERMINISTIC
    @given(st.integers(0, 10_000), st.integers(1, 12))
    def test_ramped_half_and_half_valid(self, seed, count):
        generator = OPS.make_generator(random.Random(seed))
        population = generator.ramped_half_and_half(count, 2, 6)
        assert len(population) == count
        for genome in population:
            assert_valid(genome)


class TestTextFormat:
    @DETERMINISTIC
    @given(genomes())
    def test_text_is_flags_text(self, genome):
        assert is_flags_text(genome.text())
        assert expression_text(genome) == genome.text()
        assert OPS.parse(OPS.unparse(genome)) == genome

    def test_default_genome_round_trips(self):
        default = FLAGS_SPACE.default_genome()
        assert FlagsGenome.from_text(default.text(),
                                     FLAGS_SPACE) == default

    @pytest.mark.parametrize("bad", [
        "(add 1 2)",
        "flags inline=1",
        "(flags inline=1)",                       # missing genes
        "(flags inline=1 unroll=2 hyperblock=1 "  # unroll not a choice
        "threshold=0.1 prefetch=0 order=hyperblock-first".replace(
            "unroll=2", "unroll=3") + ")",
    ])
    def test_malformed_text_rejected(self, bad):
        with pytest.raises((ParseError, ValueError)):
            FlagsGenome.from_text(bad, FLAGS_SPACE)


class TestDispatch:
    def test_flags_space_gets_flags_ops(self):
        ops = genome_ops_for(FLAGS_SPACE)
        assert isinstance(ops, FlagsGenomeOps)
        assert ops.kind == "flags"

    @pytest.mark.parametrize("case", ["hyperblock", "regalloc",
                                      "prefetch", "scheduling",
                                      "inline", "unroll"])
    def test_tree_psets_get_tree_ops(self, case):
        ops = genome_ops_for(PSETS[case])
        assert isinstance(ops, TreeGenomeOps)
        assert ops.kind == "tree"

    def test_psets_table_exposes_flags_space(self):
        assert isinstance(PSETS["flags"], FlagsSpace)

    def test_invalid_gene_values_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FlagsGenome((True, 3, True, 0.1, False, "hyperblock-first"),
                        FLAGS_SPACE)
        with pytest.raises(ValueError):
            FlagsGenome((True, 2), FLAGS_SPACE)
