"""Parser/printer tests, including the Table 1 syntax and a
property-based round-trip over randomly generated trees."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.nodes import (
    Add,
    BArg,
    BConst,
    Cmul,
    Not,
    RArg,
    RConst,
)
from repro.gp.parse import ParseError, infix, parse, tokenize, unparse


class TestTokenize:
    def test_basic(self):
        assert tokenize("(add a 1.0)") == ["(", "add", "a", "1.0", ")"]

    def test_nested(self):
        assert tokenize("(not(lt a b))") == [
            "(", "not", "(", "lt", "a", "b", ")", ")",
        ]

    def test_negative_number(self):
        assert tokenize("-1.5") == ["-1.5"]


class TestParse:
    def test_figure8_style_expression(self):
        text = ("(add (sub (mul exec_ratio_mean 0.8720) 0.9400)"
                " (mul 0.4762 (cmul (not mem_hazard)"
                " (mul 0.6727 num_paths) 1.1609)))")
        tree = parse(text, {"mem_hazard"})
        env = {"exec_ratio_mean": 1.0, "mem_hazard": False, "num_paths": 2.0}
        assert isinstance(tree.evaluate(env), float)

    def test_bare_number_is_rconst(self):
        assert parse("1.5") == RConst(1.5)

    def test_bare_int_is_rconst(self):
        assert parse("3") == RConst(3.0)

    def test_true_false_are_bconst(self):
        assert parse("true") == BConst(True)
        assert parse("false") == BConst(False)

    def test_identifier_defaults_to_real(self):
        assert parse("exec_ratio") == RArg("exec_ratio")

    def test_declared_bool_feature(self):
        assert parse("hazard", {"hazard"}) == BArg("hazard")

    def test_explicit_rarg_barg(self):
        assert parse("(rarg x)") == RArg("x")
        assert parse("(barg h)") == BArg("h")
        assert parse("(rconst 2.5)") == RConst(2.5)
        assert parse("(bconst true)") == BConst(True)

    def test_type_error_in_operator(self):
        with pytest.raises(ParseError):
            parse("(add true 1.0)")

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse("(frobnicate 1 2)")

    def test_arity_error(self):
        with pytest.raises(ParseError):
            parse("(add 1.0)")

    def test_unbalanced(self):
        with pytest.raises(ParseError):
            parse("(add 1.0 2.0")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse("(add 1.0 2.0) extra")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse("")

    def test_negative_constant(self):
        tree = parse("(add x -1.5)")
        assert tree.evaluate({"x": 0.0}) == -1.5


class TestUnparse:
    def test_round_trip_simple(self):
        text = "(add (mul x 2.0000) y)"
        assert unparse(parse(text)) == text

    def test_round_trip_booleans(self):
        tree = parse("(tern (and h true) 1.0 x)", {"h"})
        again = parse(unparse(tree), {"h"})
        assert again == tree


class TestInfix:
    def test_readable_arithmetic(self):
        tree = parse("(add (mul x 2.0) y)")
        assert infix(tree) == "((x * 2.0000) + y)"

    def test_readable_conditionals(self):
        tree = parse("(tern (not h) 1.0 0.5)", {"h"})
        assert infix(tree) == "(1.0000 if (not h) else 0.5000)"


PSET = PrimitiveSet(real_features=("alpha", "beta"), bool_features=("flag",))


@st.composite
def random_trees(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=1, max_value=6))
    generator = TreeGenerator(PSET, rng=random.Random(seed))
    return generator.grow(depth)


class TestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(random_trees())
    def test_parse_unparse_round_trip(self, tree):
        text = unparse(tree)
        again = parse(text, PSET.bool_feature_set())
        assert again == tree

    @settings(max_examples=80, deadline=None)
    @given(random_trees())
    def test_evaluation_total(self, tree):
        env = {"alpha": 1.5, "beta": -2.0, "flag": True}
        value = tree.evaluate(env)
        assert isinstance(value, (float, bool))
        if isinstance(value, float):
            assert value == value  # not NaN
