"""Simplification: algebraic identities preserve semantics; intron
detection flags dead subtrees."""

import random

from hypothesis import given, settings, strategies as st

from repro.gp.generate import PrimitiveSet, TreeGenerator
from repro.gp.nodes import BConst, RConst
from repro.gp.parse import parse, unparse
from repro.gp.simplify import find_introns, simplify

PSET = PrimitiveSet(real_features=("a", "b"), bool_features=("h",))

ENVS = [
    {"a": 0.0, "b": 0.0, "h": False},
    {"a": 1.0, "b": -1.0, "h": True},
    {"a": 3.5, "b": 2.0, "h": False},
    {"a": -7.25, "b": 0.5, "h": True},
]


def values_equal(left, right):
    if isinstance(left, bool) or isinstance(right, bool):
        return bool(left) == bool(right)
    return abs(float(left) - float(right)) < 1e-9


class TestIdentities:
    def test_add_zero(self):
        assert simplify(parse("(add a 0.0)")) == parse("a")
        assert simplify(parse("(add 0.0 a)")) == parse("a")

    def test_mul_one(self):
        assert simplify(parse("(mul a 1.0)")) == parse("a")

    def test_mul_zero(self):
        assert simplify(parse("(mul a 0.0)")) == RConst(0.0)

    def test_sub_self(self):
        assert simplify(parse("(sub a a)")) == RConst(0.0)

    def test_div_self(self):
        # Exact: protected division yields 1.0 at a == 0 too.
        assert simplify(parse("(div a a)")) == RConst(1.0)

    def test_div_one(self):
        assert simplify(parse("(div a 1.0)")) == parse("a")

    def test_constant_folding(self):
        assert simplify(parse("(add 2.0 (mul 3.0 4.0))")) == RConst(14.0)

    def test_protected_div_folds(self):
        assert simplify(parse("(div 5.0 0.0)")) == RConst(1.0)

    def test_tern_constant_condition(self):
        assert simplify(parse("(tern true a b)")) == parse("a")
        assert simplify(parse("(tern false a b)")) == parse("b")

    def test_tern_equal_arms(self):
        assert simplify(parse("(tern (lt a b) a a)")) == parse("a")

    def test_cmul_constant_condition(self):
        assert simplify(parse("(cmul false a b)")) == parse("b")
        assert simplify(parse("(cmul true a b)")) == parse("(mul a b)")

    def test_boolean_identities(self):
        assert simplify(parse("(and h true)", {"h"})) == parse("h", {"h"})
        assert simplify(parse("(and h false)", {"h"})) == BConst(False)
        assert simplify(parse("(or h false)", {"h"})) == parse("h", {"h"})
        assert simplify(parse("(or h true)", {"h"})) == BConst(True)
        assert simplify(parse("(not (not h))", {"h"})) == parse("h", {"h"})

    def test_self_comparisons(self):
        assert simplify(parse("(lt a a)")) == BConst(False)
        assert simplify(parse("(eq a a)")) == BConst(True)

    def test_nested_cleanup(self):
        tree = parse("(add (mul a 1.0) (sub b b))")
        assert simplify(tree) == parse("a")

    def test_cascading_folds(self):
        tree = parse("(mul (add 0.0 1.0) (tern true a b))")
        assert simplify(tree) == parse("a")


@st.composite
def random_trees(draw):
    seed = draw(st.integers(min_value=0, max_value=50_000))
    generator = TreeGenerator(PSET, rng=random.Random(seed))
    return generator.grow(6)


class TestSemanticsPreserved:
    @settings(max_examples=100, deadline=None)
    @given(random_trees())
    def test_simplify_preserves_value(self, tree):
        simplified = simplify(tree)
        for env in ENVS:
            assert values_equal(tree.evaluate(env), simplified.evaluate(env))

    @settings(max_examples=100, deadline=None)
    @given(random_trees())
    def test_simplify_never_grows(self, tree):
        assert simplify(tree).size() <= tree.size()


class TestIntrons:
    def test_dead_subexpression_detected(self):
        # (sub b b) contributes nothing.
        tree = parse("(add a (mul 0.0 (add b 1.0)))")
        introns = find_introns(tree, ENVS)
        texts = {unparse(node) for node in introns}
        assert "(mul 0.0000 (add b 1.0000))" in texts

    def test_live_subexpression_not_flagged(self):
        tree = parse("(add a (mul b 2.0))")
        introns = find_introns(tree, ENVS)
        assert all(unparse(node) != "(mul b 2.0000)" for node in introns)

    def test_tree_unmodified(self):
        tree = parse("(add a (mul 0.0 b))")
        key = tree.structural_key()
        find_introns(tree, ENVS)
        assert tree.structural_key() == key

    def test_requires_environments(self):
        import pytest

        with pytest.raises(ValueError):
            find_introns(parse("(add a b)"), [])
