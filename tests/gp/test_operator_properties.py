"""Property tests: the GP operators are closed over well-formed trees.

The paper's search only works because crossover, mutation and
simplification can never manufacture an ill-typed expression — any
closure bug would surface as a crash (or worse, a silently wrong
heuristic) deep inside a long evolution run.  These tests state the
closure contract directly, over the *production* primitive sets of all
six tree-based case studies (the flags genome has its own closure
suite in ``test_genome_properties.py``):

* every offspring is type-correct and arity-correct at every node;
* every offspring respects the depth bound;
* every offspring evaluates to a value of the pset's result type;
* every offspring survives a ``parse(unparse(tree))`` round trip
  structurally unchanged — the persistence format cannot lose trees
  the operators can produce.

All randomness is seeded through Hypothesis-drawn integers and
``derandomize=True``, so the suite is deterministic and tier-1 safe.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.gp.crossover import crossover
from repro.gp.generate import TreeGenerator
from repro.gp.mutate import mutate
from repro.gp.parse import parse, unparse
from repro.gp.simplify import simplify
from repro.gp.types import BOOL, REAL
from repro.metaopt.psets import PSETS

CASES = ("hyperblock", "regalloc", "prefetch", "scheduling",
         "inline", "unroll")

DETERMINISTIC = settings(max_examples=40, deadline=None, derandomize=True)


def make_environment(pset, rng):
    env = {name: rng.uniform(-10.0, 10.0) for name in pset.real_features}
    env.update({name: rng.random() < 0.5 for name in pset.bool_features})
    return env


def assert_closed(tree, pset, max_depth=None):
    """The full closure contract for one tree."""
    for node in tree.walk():
        assert len(node.children) == len(node.arg_types), \
            f"{node.op_name} arity violated"
        for child, want in zip(node.children, node.arg_types):
            assert child.result_type is want, \
                f"{node.op_name} child type violated"
    assert tree.result_type is pset.result_type
    if max_depth is not None:
        assert tree.depth() <= max_depth

    value = tree.evaluate(make_environment(pset, random.Random(99)))
    if pset.result_type is REAL:
        assert isinstance(value, float)
    else:
        assert pset.result_type is BOOL and isinstance(value, bool)

    reparsed = parse(unparse(tree), pset.bool_feature_set())
    assert reparsed.structural_key() == tree.structural_key(), \
        "parse/unparse round trip changed the tree"


@st.composite
def operator_inputs(draw):
    """A case name, a seeded generator, and two random parents."""
    case = draw(st.sampled_from(CASES))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=2, max_value=6))
    full = draw(st.booleans())
    pset = PSETS[case]
    rng = random.Random(seed)
    generator = TreeGenerator(pset, rng=rng)
    build = generator.full if full else generator.grow
    return pset, generator, rng, build(depth), build(depth)


class TestCrossoverClosure:
    @DETERMINISTIC
    @given(operator_inputs())
    def test_offspring_closed_and_depth_bounded(self, inputs):
        pset, _generator, rng, mother, father = inputs
        left, right = crossover(mother, father, rng, max_depth=10)
        assert_closed(left, pset, max_depth=10)
        assert_closed(right, pset, max_depth=10)

    @DETERMINISTIC
    @given(operator_inputs())
    def test_parents_survive_crossover_intact(self, inputs):
        pset, _generator, rng, mother, father = inputs
        mother_key = mother.structural_key()
        father_key = father.structural_key()
        crossover(mother, father, rng)
        assert mother.structural_key() == mother_key
        assert father.structural_key() == father_key


class TestMutationClosure:
    @DETERMINISTIC
    @given(operator_inputs())
    def test_mutant_closed_and_depth_bounded(self, inputs):
        pset, generator, rng, tree, _other = inputs
        mutant = mutate(tree, generator, rng, max_depth=10)
        assert_closed(mutant, pset, max_depth=10)

    @DETERMINISTIC
    @given(operator_inputs())
    def test_repeated_mutation_stays_closed(self, inputs):
        """Closure must hold under composition, not just one step."""
        pset, generator, rng, tree, _other = inputs
        for _ in range(5):
            tree = mutate(tree, generator, rng, max_depth=10)
        assert_closed(tree, pset, max_depth=10)


class TestSimplifyClosure:
    @DETERMINISTIC
    @given(operator_inputs())
    def test_simplified_tree_closed_and_no_larger(self, inputs):
        pset, _generator, _rng, tree, _other = inputs
        simplified = simplify(tree)
        assert_closed(simplified, pset)
        assert simplified.size() <= tree.size()

    @DETERMINISTIC
    @given(operator_inputs(), st.integers(min_value=0, max_value=10_000))
    def test_simplify_preserves_semantics(self, inputs, env_seed):
        pset, _generator, _rng, tree, _other = inputs
        simplified = simplify(tree)
        env = make_environment(pset, random.Random(env_seed))
        before, after = tree.evaluate(env), simplified.evaluate(env)
        if pset.result_type is REAL:
            assert after == before or abs(after - before) < 1e-9
        else:
            assert after is before


class TestPipelinedOperators:
    """The operators compose the way the engine actually uses them:
    crossover, then (sometimes) mutation, then simplification of the
    reported champion."""

    @DETERMINISTIC
    @given(operator_inputs())
    def test_breeding_pipeline_closed(self, inputs):
        pset, generator, rng, mother, father = inputs
        left, right = crossover(mother, father, rng, max_depth=10)
        for child in (left, right):
            mutant = mutate(child, generator, rng, max_depth=10)
            assert_closed(simplify(mutant), pset)
