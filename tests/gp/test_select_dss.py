"""Tournament selection, parsimony pressure, and dynamic subset
selection."""

import random

import pytest

from repro.gp.dss import DSSState
from repro.gp.nodes import Add, RArg, RConst
from repro.gp.select import Individual, best_of, better, tournament


def make_individual(fitness, size=1):
    tree = RArg("x")
    for _ in range(size - 1):
        tree = Add(tree, RConst(1.0))
    return Individual(tree=tree, fitness=fitness)


class TestBetter:
    def test_higher_fitness_wins(self):
        strong = make_individual(2.0)
        weak = make_individual(1.0)
        assert better(strong, weak) is strong
        assert better(weak, strong) is strong

    def test_parsimony_breaks_ties(self):
        small = make_individual(1.0, size=1)
        big = make_individual(1.0, size=5)
        assert better(small, big) is small
        assert better(big, small) is small

    def test_unevaluated_loses(self):
        evaluated = make_individual(0.1)
        fresh = Individual(tree=RArg("x"))
        assert better(evaluated, fresh) is evaluated


class TestTournament:
    def test_selects_best_with_full_tournament(self):
        population = [make_individual(i / 10) for i in range(10)]
        rng = random.Random(0)
        # Tournament size equal to a large multiple of the population
        # almost surely includes the best individual.
        winner = tournament(population, rng, size=50)
        assert winner.fitness == max(i.fitness for i in population)

    def test_small_tournament_gives_weaker_pressure(self):
        population = [make_individual(i / 100) for i in range(100)]
        rng = random.Random(1)
        winners = [tournament(population, rng, size=2).fitness
                   for _ in range(300)]
        # With size-2 tournaments the average winner is well below the
        # maximum — selection pressure is moderate.
        assert sum(winners) / len(winners) < 0.95

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            tournament([], random.Random(0))

    def test_best_of(self):
        population = [make_individual(0.5), make_individual(0.9),
                      make_individual(0.7)]
        assert best_of(population).fitness == 0.9


class TestDSS:
    def test_subset_size_respected(self):
        dss = DSSState(("a", "b", "c", "d"), subset_size=2,
                       rng=random.Random(0))
        for _ in range(10):
            subset = dss.select_subset()
            assert len(subset) == 2
            assert len(set(subset)) == 2

    def test_bad_subset_size(self):
        with pytest.raises(ValueError):
            DSSState(("a",), subset_size=2)
        with pytest.raises(ValueError):
            DSSState(("a",), subset_size=0)

    def test_empty_benchmarks(self):
        with pytest.raises(ValueError):
            DSSState((), subset_size=1)

    def test_ages_grow_for_unselected(self):
        dss = DSSState(("a", "b", "c", "d"), subset_size=1,
                       rng=random.Random(3))
        subset = dss.select_subset()
        for name in dss.benchmarks:
            if name in subset:
                assert dss.age[name] == 1
            else:
                assert dss.age[name] == 2

    def test_difficult_benchmarks_selected_more(self):
        dss = DSSState(("easy", "hard"), subset_size=1,
                       difficulty_exponent=2.0, age_exponent=0.0,
                       rng=random.Random(4))
        # Mark "easy" as very easy (pool far ahead of baseline).
        for _ in range(6):
            dss.record_results({"easy": 5.0, "hard": 0.8})
        picks = [dss.select_subset()[0] for _ in range(100)]
        assert picks.count("hard") > picks.count("easy")

    def test_record_unknown_benchmark(self):
        dss = DSSState(("a",), subset_size=1)
        with pytest.raises(KeyError):
            dss.record_results({"zzz": 1.0})

    def test_all_benchmarks_eventually_selected(self):
        dss = DSSState(tuple("abcdef"), subset_size=2,
                       rng=random.Random(5))
        seen = set()
        for _ in range(30):
            seen.update(dss.select_subset())
        assert seen == set("abcdef")

    def test_weights_positive(self):
        dss = DSSState(("a", "b"), subset_size=1)
        weights = dss.weights()
        assert all(w > 0 for w in weights.values())
